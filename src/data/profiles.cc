#include "data/profiles.h"

#include "util/logging.h"

namespace tfmae::data {

std::vector<BenchmarkDataset> MainDatasets() {
  return {BenchmarkDataset::kSwat, BenchmarkDataset::kPsm,
          BenchmarkDataset::kSmd, BenchmarkDataset::kMsl,
          BenchmarkDataset::kSmap};
}

std::string DatasetName(BenchmarkDataset dataset) {
  switch (dataset) {
    case BenchmarkDataset::kMsl:
      return "MSL";
    case BenchmarkDataset::kPsm:
      return "PSM";
    case BenchmarkDataset::kSmd:
      return "SMD";
    case BenchmarkDataset::kSwat:
      return "SWaT";
    case BenchmarkDataset::kSmap:
      return "SMAP";
    case BenchmarkDataset::kNipsTsGlobal:
      return "NIPS-TS-Global";
    case BenchmarkDataset::kNipsTsSeasonal:
      return "NIPS-TS-Seasonal";
  }
  return "?";
}

DatasetProfile GetProfile(BenchmarkDataset dataset, double scale) {
  TFMAE_CHECK(scale > 0.0);
  DatasetProfile p;
  p.name = DatasetName(dataset);
  switch (dataset) {
    case BenchmarkDataset::kMsl:
      // Mars rover telemetry: 55 channels, ~10.5% anomalies; ISA reports are
      // dominated by point/contextual glitches plus shape changes.
      p.base.num_features = 55;
      p.train_length = 1600;
      p.val_length = 400;
      p.test_length = 2400;
      p.test_anomaly_ratio = 0.105;
      p.train_contamination = 0.03;
      p.mix = {.global_point = 1, .contextual = 2, .seasonal = 1,
               .trend = 0.5, .shapelet = 2};
      p.test_shift_scale = 1.1;
      p.test_shift_level = 0.15;
      p.base.benign_event_rate = 1.2;
      p.seed = 101;
      break;
    case BenchmarkDataset::kPsm:
      // eBay pooled server metrics: 25 channels, very high anomaly ratio
      // (27.8%) with long incident segments.
      p.base.num_features = 25;
      p.train_length = 2000;
      p.val_length = 500;
      p.test_length = 2000;
      p.test_anomaly_ratio = 0.278;
      p.train_contamination = 0.04;
      p.mix = {.global_point = 1, .contextual = 1, .seasonal = 1,
               .trend = 2, .shapelet = 2};
      p.anomaly_options.max_segment = 60;
      p.test_shift_scale = 1.05;
      p.test_shift_level = 0.1;
      p.base.benign_event_rate = 1.0;
      p.seed = 202;
      break;
    case BenchmarkDataset::kSmd:
      // Internet-server machine dataset: 38 channels, sparse anomalies
      // (4.2%), mostly resource spikes and drifts; little shift.
      p.base.num_features = 38;
      p.train_length = 2600;
      p.val_length = 650;
      p.test_length = 3200;
      p.test_anomaly_ratio = 0.042;
      p.train_contamination = 0.015;
      p.mix = {.global_point = 2, .contextual = 2.5, .seasonal = 1,
               .trend = 0.5, .shapelet = 1.5};
      p.base.benign_event_rate = 1.2;
      p.seed = 303;
      break;
    case BenchmarkDataset::kSwat:
      // Water-treatment testbed: 51 channels, strongly periodic actuator
      // cycles; attacks appear as sustained pattern/shape deviations.
      p.base.num_features = 51;
      p.train_length = 2200;
      p.val_length = 550;
      p.test_length = 2600;
      p.test_anomaly_ratio = 0.121;
      p.train_contamination = 0.01;
      p.mix = {.global_point = 0.5, .contextual = 0.5, .seasonal = 2,
               .trend = 2, .shapelet = 3};
      p.anomaly_options.min_segment = 16;
      p.anomaly_options.max_segment = 80;
      p.base.noise_std = 0.05;
      p.base.min_period = 20;
      p.base.max_period = 40;
      p.base.benign_event_rate = 0.8;
      p.seed = 404;
      break;
    case BenchmarkDataset::kSmap:
      // Soil-moisture satellite telemetry: 25 channels, 12.8% anomalies,
      // pronounced train-to-test distribution shift (paper Figs. 1 and 9).
      p.base.num_features = 25;
      p.train_length = 1800;
      p.val_length = 450;
      p.test_length = 2800;
      p.test_anomaly_ratio = 0.128;
      p.train_contamination = 0.02;
      p.mix = {.global_point = 1, .contextual = 2, .seasonal = 1.5,
               .trend = 1, .shapelet = 1};
      p.test_shift_scale = 1.35;
      p.test_shift_level = 0.6;
      p.base.benign_event_rate = 1.0;
      p.seed = 505;
      break;
    case BenchmarkDataset::kNipsTsGlobal:
      // Synthetic univariate with global point anomalies only (Lai et al.).
      p.base.num_features = 1;
      p.train_length = 1200;
      p.val_length = 300;
      p.test_length = 1500;
      p.test_anomaly_ratio = 0.05;
      p.train_contamination = 0.0;
      p.mix = {.global_point = 1};
      p.base.noise_std = 0.05;
      p.seed = 606;
      break;
    case BenchmarkDataset::kNipsTsSeasonal:
      // Synthetic univariate with seasonal (frequency-change) anomalies.
      p.base.num_features = 1;
      p.train_length = 1200;
      p.val_length = 300;
      p.test_length = 1500;
      p.test_anomaly_ratio = 0.05;
      p.train_contamination = 0.0;
      p.mix = {.seasonal = 1};
      p.anomaly_options.min_segment = 12;
      p.anomaly_options.max_segment = 30;
      p.base.noise_std = 0.05;
      p.seed = 707;
      break;
  }
  p.train_length = static_cast<std::int64_t>(p.train_length * scale);
  p.val_length = static_cast<std::int64_t>(p.val_length * scale);
  p.test_length = static_cast<std::int64_t>(p.test_length * scale);
  return p;
}

LabeledDataset MakeDataset(const DatasetProfile& profile) {
  BaseSignalConfig base = profile.base;
  base.length =
      profile.train_length + profile.val_length + profile.test_length;
  base.seed = profile.seed;
  TimeSeries full = GenerateBaseSignal(base);

  LabeledDataset out;
  out.name = profile.name;
  out.train = full.Slice(0, profile.train_length);
  out.val = full.Slice(profile.train_length, profile.val_length);
  out.test = full.Slice(profile.train_length + profile.val_length,
                        profile.test_length);

  ApplyDistributionShift(&out.test, profile.test_shift_scale,
                         profile.test_shift_level);

  Rng inject_rng(profile.seed * 7919 + 13);
  InjectAnomalies(&out.train, profile.mix, profile.train_contamination,
                  profile.anomaly_options, &inject_rng);
  InjectAnomalies(&out.val, profile.mix, profile.train_contamination,
                  profile.anomaly_options, &inject_rng);
  InjectAnomalies(&out.test, profile.mix, profile.test_anomaly_ratio,
                  profile.anomaly_options, &inject_rng);
  return out;
}

LabeledDataset MakeBenchmarkDataset(BenchmarkDataset dataset, double scale) {
  return MakeDataset(GetProfile(dataset, scale));
}

}  // namespace tfmae::data
