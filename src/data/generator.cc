#include "data/generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace tfmae::data {

TimeSeries GenerateBaseSignal(const BaseSignalConfig& config) {
  TFMAE_CHECK(config.length >= 1 && config.num_features >= 1);
  TFMAE_CHECK(config.num_harmonics >= 0);
  Rng rng(config.seed);
  TimeSeries series = TimeSeries::Zeros(config.length, config.num_features);

  for (std::int64_t n = 0; n < config.num_features; ++n) {
    // Channel-specific harmonic parameters.
    struct Harmonic {
      double period;
      double phase;
      double amplitude;
    };
    std::vector<Harmonic> harmonics;
    harmonics.reserve(static_cast<std::size_t>(config.num_harmonics));
    for (int h = 0; h < config.num_harmonics; ++h) {
      harmonics.push_back({rng.Uniform(config.min_period, config.max_period),
                           rng.Uniform(0.0, 2.0 * M_PI),
                           rng.Uniform(config.min_amplitude,
                                       config.max_amplitude) /
                               static_cast<double>(h + 1)});
    }
    const double drift =
        config.drift_std > 0.0 ? rng.Normal(0.0, config.drift_std) / 1000.0
                               : 0.0;
    double ar_state = 0.0;
    for (std::int64_t t = 0; t < config.length; ++t) {
      double value = drift * static_cast<double>(t);
      for (const Harmonic& h : harmonics) {
        value += h.amplitude *
                 std::sin(2.0 * M_PI * static_cast<double>(t) / h.period +
                          h.phase);
      }
      ar_state = config.ar_coefficient * ar_state +
                 rng.Normal(0.0, config.noise_std);
      series.at(t, n) = static_cast<float>(value + ar_state);
    }
  }

  // Recurring benign transients: one fixed half-sine template on a fixed
  // channel subset, repeated at jittered intervals over the whole series.
  if (config.benign_event_rate > 0.0 && config.num_features >= 1) {
    const std::int64_t pulse_len =
        std::max<std::int64_t>(2, config.benign_event_length);
    const std::int64_t affected = std::max<std::int64_t>(
        1, config.num_features * 3 / 10);
    // Fixed per-run template amplitudes (drawn once, reused by every event).
    std::vector<double> template_amp(static_cast<std::size_t>(affected));
    for (double& amp : template_amp) {
      amp = config.benign_event_amplitude *
            rng.Uniform(0.7, 1.3) * (rng.Bernoulli(0.5) ? 1.0 : -1.0);
    }
    const double mean_interval =
        100.0 / config.benign_event_rate;
    std::int64_t t = static_cast<std::int64_t>(
        rng.Uniform(0.2 * mean_interval, mean_interval));
    while (t + pulse_len < config.length) {
      for (std::int64_t k = 0; k < pulse_len; ++k) {
        const double shape = std::sin(
            M_PI * static_cast<double>(k) / static_cast<double>(pulse_len - 1));
        for (std::int64_t a = 0; a < affected; ++a) {
          series.at(t + k, a) += static_cast<float>(
              template_amp[static_cast<std::size_t>(a)] * shape);
        }
      }
      t += static_cast<std::int64_t>(
          rng.Uniform(0.6 * mean_interval, 1.4 * mean_interval));
    }
  }
  return series;
}

void ApplyDistributionShift(TimeSeries* series, double scale,
                            double level_offset) {
  TFMAE_CHECK(series != nullptr);
  // Progressive drift: the shift ramps from nothing at t=0 to its full
  // strength at the end of the slice. A gradual drift (rather than a step)
  // changes the *ordering* of reconstruction errors along the series, which
  // is the failure mode the paper attributes to distribution shift (Fig. 1
  // right, Fig. 9).
  const double denom =
      static_cast<double>(std::max<std::int64_t>(series->length - 1, 1));
  for (std::int64_t t = 0; t < series->length; ++t) {
    const double ramp = static_cast<double>(t) / denom;
    const double step_scale = 1.0 + (scale - 1.0) * ramp;
    const double step_level = level_offset * ramp;
    for (std::int64_t n = 0; n < series->num_features; ++n) {
      series->at(t, n) = static_cast<float>(
          static_cast<double>(series->at(t, n)) * step_scale + step_level);
    }
  }
}

}  // namespace tfmae::data
