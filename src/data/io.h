// CSV import/export for time series, so downstream users can run the library
// on their own data (see examples/).
//
// Format: a header line "f0,f1,...,label?" then one row per time step. The
// optional final "label" column carries 0/1 ground truth.
//
// LoadCsv is strict about structure but tolerant about missing data: a
// ragged row, a non-numeric cell, or a bad label fails the load with a
// line-numbered diagnostic, while an empty cell or a literal "nan" is
// accepted as a missing value (stored as NaN). Callers feeding a detector
// should repair missing values first — ImputeMissingLocf below, or the
// streaming layer's online imputation (docs/RESILIENCE.md).
#ifndef TFMAE_DATA_IO_H_
#define TFMAE_DATA_IO_H_

#include <cstdint>
#include <optional>
#include <string>

#include "data/timeseries.h"

namespace tfmae::data {

/// Where and why a CSV load failed, plus counters that are filled in even on
/// success (missing_values, rows).
struct CsvDiagnostic {
  /// 1-based line of the first fatal problem (0 when the load succeeded or
  /// the file could not be opened at all).
  std::int64_t line = 0;
  /// Human-readable reason; empty on success.
  std::string message;
  /// Cells accepted as missing (empty or "nan"), stored as NaN.
  std::int64_t missing_values = 0;
  /// Data rows parsed (excluding the header).
  std::int64_t rows = 0;

  bool ok() const { return message.empty(); }
};

/// Writes `series` to `path`. Includes a label column iff labels are present.
/// Returns false on I/O failure.
bool SaveCsv(const TimeSeries& series, const std::string& path);

/// Loads a CSV written by SaveCsv (or any numeric CSV with a header). If the
/// last column is named "label" it becomes the label vector. Returns
/// std::nullopt on failure; when `diagnostic` is given it reports the line
/// number and reason (and, on success, how many missing values were seen).
std::optional<TimeSeries> LoadCsv(const std::string& path,
                                  CsvDiagnostic* diagnostic = nullptr);

/// Repairs missing values (NaN) in place, per feature: last observation
/// carried forward, and the first good value carried *backward* over any
/// leading gap. Returns the number of values imputed. A feature with no
/// finite value at all is filled with zeros (counted as imputed).
std::int64_t ImputeMissingLocf(TimeSeries* series);

}  // namespace tfmae::data

#endif  // TFMAE_DATA_IO_H_
