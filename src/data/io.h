// CSV import/export for time series, so downstream users can run the library
// on their own data (see examples/).
//
// Format: a header line "f0,f1,...,label?" then one row per time step. The
// optional final "label" column carries 0/1 ground truth.
#ifndef TFMAE_DATA_IO_H_
#define TFMAE_DATA_IO_H_

#include <optional>
#include <string>

#include "data/timeseries.h"

namespace tfmae::data {

/// Writes `series` to `path`. Includes a label column iff labels are present.
/// Returns false on I/O failure.
bool SaveCsv(const TimeSeries& series, const std::string& path);

/// Loads a CSV written by SaveCsv (or any numeric CSV with a header). If the
/// last column is named "label" it becomes the label vector.
/// Returns std::nullopt on failure.
std::optional<TimeSeries> LoadCsv(const std::string& path);

}  // namespace tfmae::data

#endif  // TFMAE_DATA_IO_H_
