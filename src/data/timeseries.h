// Time-series containers, normalization, and windowing.
#ifndef TFMAE_DATA_TIMESERIES_H_
#define TFMAE_DATA_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tfmae::data {

/// A (possibly multivariate) time series with optional point labels.
/// Values are row-major [length, num_features]; labels[t] == 1 marks time
/// step t anomalous (labels may be empty for unlabeled data).
struct TimeSeries {
  std::int64_t length = 0;
  std::int64_t num_features = 0;
  std::vector<float> values;
  std::vector<std::uint8_t> labels;

  /// Allocates a zero series with empty (all-normal) labels.
  static TimeSeries Zeros(std::int64_t length, std::int64_t num_features);

  float& at(std::int64_t t, std::int64_t n) {
    return values[static_cast<std::size_t>(t * num_features + n)];
  }
  float at(std::int64_t t, std::int64_t n) const {
    return values[static_cast<std::size_t>(t * num_features + n)];
  }

  /// Fraction of labeled-anomalous points (0 if unlabeled).
  double AnomalyRatio() const;

  /// Copies rows [start, start+len) including labels.
  TimeSeries Slice(std::int64_t start, std::int64_t len) const;
};

/// Per-feature z-score normalization fitted on training data and applied to
/// validation/test data (the standard protocol of the paper's benchmarks).
class ZScoreNormalizer {
 public:
  /// Computes per-feature mean/std over `train`. Features with (near-)zero
  /// variance get std 1 so they pass through unscaled.
  void Fit(const TimeSeries& train);

  /// Returns a normalized copy: (x - mean) / std per feature.
  TimeSeries Apply(const TimeSeries& series) const;

  const std::vector<float>& means() const { return means_; }
  const std::vector<float>& stds() const { return stds_; }

  /// Restores statistics directly (checkpoint loading). Sizes must match
  /// and stds must be positive.
  void SetStatistics(std::vector<float> means, std::vector<float> stds);

 private:
  std::vector<float> means_;
  std::vector<float> stds_;
};

/// Start offsets of sliding windows of `window` steps with the given stride;
/// if the tail does not align, a final window ending exactly at the series
/// end is added so every time step is covered.
std::vector<std::int64_t> WindowStarts(std::int64_t length,
                                       std::int64_t window,
                                       std::int64_t stride);

}  // namespace tfmae::data

#endif  // TFMAE_DATA_TIMESERIES_H_
