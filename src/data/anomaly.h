// Anomaly injection following the taxonomy of Lai et al. (NeurIPS 2021),
// which the paper's NIPS-TS benchmarks are generated from: global and
// contextual observation anomalies, plus seasonal, trend, and shapelet
// pattern anomalies. Used by the dataset profiles to simulate the anomaly
// structure of each benchmark dataset (see DESIGN.md §3 Substitutions).
#ifndef TFMAE_DATA_ANOMALY_H_
#define TFMAE_DATA_ANOMALY_H_

#include <cstdint>

#include "data/timeseries.h"
#include "util/rng.h"

namespace tfmae::data {

/// Anomaly families of the Lai et al. taxonomy.
enum class AnomalyType {
  kGlobalPoint,   ///< single value far outside the global range
  kContextual,    ///< value plausible globally but abnormal locally
  kSeasonal,      ///< segment with altered oscillation frequency
  kTrend,         ///< segment with an injected mean drift
  kShapelet,      ///< segment whose waveform shape is replaced
};

/// Relative weights over anomaly types; zero disables a type.
struct AnomalyMix {
  double global_point = 0.0;
  double contextual = 0.0;
  double seasonal = 0.0;
  double trend = 0.0;
  double shapelet = 0.0;
};

/// Injection tuning knobs.
struct AnomalyOptions {
  /// Segment anomalies span [min,max] steps.
  std::int64_t min_segment = 8;
  std::int64_t max_segment = 40;
  /// Each anomaly affects this fraction of features (at least one).
  double feature_fraction = 0.3;
  /// Magnitude scale of injected deviations, in global-stddev units.
  double magnitude = 3.0;
};

/// Injects anomalies into `series` until about `target_ratio` of the time
/// steps are labeled anomalous. Types are drawn proportionally to `mix`.
/// Initializes labels (to zeros) if absent; existing labels are preserved
/// and count toward the target. Returns the number of anomalies injected.
std::int64_t InjectAnomalies(TimeSeries* series, const AnomalyMix& mix,
                             double target_ratio, const AnomalyOptions& options,
                             Rng* rng);

/// Injects a single anomaly of the given type at a random location.
/// Marks the affected time steps in series->labels.
void InjectOne(TimeSeries* series, AnomalyType type,
               const AnomalyOptions& options, Rng* rng);

}  // namespace tfmae::data

#endif  // TFMAE_DATA_ANOMALY_H_
