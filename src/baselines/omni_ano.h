// OmniAnomaly-lite (Su et al., KDD 2019) — the stochastic-RNN
// reconstruction baseline: a GRU encoder produces per-step latent Gaussians
// (variational posterior), sampled codes are decoded back to observations,
// and the anomaly score is the reconstruction likelihood proxy.
// Simplification vs. the original: the decoder is an MLP instead of a second
// GRU, and the normalizing-flow posterior / linear Gaussian state-space
// smoother are omitted; the defining mechanism — recurrent temporal encoding
// with a variational bottleneck — is preserved.
#ifndef TFMAE_BASELINES_OMNI_ANO_H_
#define TFMAE_BASELINES_OMNI_ANO_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/gru.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters of OmniAnomaly-lite.
struct OmniAnoOptions {
  std::int64_t window = 50;
  std::int64_t stride = 25;
  std::int64_t hidden = 32;   ///< GRU state width
  std::int64_t latent = 8;    ///< variational code width
  float kl_weight = 0.05f;    ///< beta of the ELBO's KL term
  int epochs = 20;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 53;
};

/// OmniAnomaly-lite detector (GRU-VAE).
class OmniAnoDetector : public core::AnomalyDetector {
 public:
  explicit OmniAnoDetector(OmniAnoOptions options = {});
  ~OmniAnoDetector() override;

  std::string Name() const override { return "OmniAno"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  OmniAnoOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_OMNI_ANO_H_
