// USAD (Audibert et al., KDD 2020) — adversarial reconstruction family:
// one encoder, two decoders; decoder 2 learns to discriminate real windows
// from decoder 1's reconstructions via a two-phase adversarial objective.
#ifndef TFMAE_BASELINES_USAD_H_
#define TFMAE_BASELINES_USAD_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters of USAD.
struct UsadOptions {
  std::int64_t window = 50;
  std::int64_t stride = 25;
  std::int64_t hidden = 64;
  std::int64_t latent = 16;
  int epochs = 30;
  float learning_rate = 1e-3f;
  /// Score mixture: alpha * ||x - AE1(x)||^2 + beta * ||x - AE2(AE1(x))||^2.
  float alpha = 0.5f;
  float beta = 0.5f;
  std::uint64_t seed = 37;
};

/// USAD detector over flattened windows.
class UsadDetector : public core::AnomalyDetector {
 public:
  explicit UsadDetector(UsadOptions options = {});
  ~UsadDetector() override;

  std::string Name() const override { return "USAD"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  UsadOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_USAD_H_
