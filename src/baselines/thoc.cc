#include "baselines/thoc.h"

#include <cmath>

#include "baselines/common.h"
#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {
namespace {

// Pairwise squared distances between rows of f [M, H] and centers c [K, H],
// composed from differentiable ops: d = |f|^2 + |c|^2 - 2 f c^T.
Tensor PairwiseSquaredDistance(const Tensor& features, const Tensor& centers) {
  const std::int64_t m = features.dim(0);
  const std::int64_t h = features.dim(1);
  const std::int64_t k = centers.dim(0);
  Tensor ones_h = Tensor::Full({h, 1}, 1.0f);
  Tensor f2 = ops::MatMul(ops::Square(features), ones_h);        // [M, 1]
  Tensor c2 = ops::MatMul(ops::Square(centers), ones_h);         // [K, 1]
  Tensor cross = ops::MatMul(features, ops::Transpose2(centers));  // [M, K]
  Tensor f2_full = ops::MatMul(f2, Tensor::Full({1, k}, 1.0f));  // [M, K]
  Tensor c2_full =
      ops::Transpose2(ops::MatMul(c2, Tensor::Full({1, m}, 1.0f)));  // [M, K]
  return ops::Sub(ops::Add(f2_full, c2_full), ops::Scale(cross, 2.0f));
}

}  // namespace

/// One GRU + one set of cluster centers per temporal resolution.
class ThocDetector::Net : public nn::Module {
 public:
  Net(std::int64_t num_features, const ThocOptions& options, Rng* rng)
      : options_(options) {
    for (int r = 0; r < options.num_resolutions; ++r) {
      encoders_.push_back(
          std::make_unique<nn::GruLayer>(num_features, options.hidden, rng));
      RegisterModule("gru" + std::to_string(r), encoders_.back().get());
      centers_.push_back(RegisterParameter(
          "centers" + std::to_string(r),
          Tensor::Randn({options.num_clusters, options.hidden}, rng, 0.5f)));
    }
  }

  /// One-class soft-min distance loss over all resolutions (differentiable)
  /// for a [T, N] window.
  Tensor Loss(const Tensor& x) const {
    Tensor total;
    for (std::size_t r = 0; r < encoders_.size(); ++r) {
      Tensor features = Features(x, r);
      Tensor distances = PairwiseSquaredDistance(features, centers_[r]);
      Tensor weights = ops::Softmax(ops::Neg(distances));
      Tensor soft_min = ops::Scale(
          ops::SumAll(ops::Mul(weights, distances)),
          1.0f / static_cast<float>(features.dim(0)));
      total = r == 0 ? soft_min : ops::Add(total, soft_min);
    }
    return ops::Scale(total, 1.0f / static_cast<float>(encoders_.size()));
  }

  /// Per-time-step soft-min distance averaged over resolutions (scoring).
  std::vector<float> StepScores(const Tensor& x) const {
    const std::int64_t t_len = x.dim(0);
    std::vector<double> scores(static_cast<std::size_t>(t_len), 0.0);
    for (std::size_t r = 0; r < encoders_.size(); ++r) {
      const std::int64_t stride = std::int64_t{1} << r;
      Tensor features = Features(x, r);
      Tensor distances = PairwiseSquaredDistance(features, centers_[r]);
      const std::int64_t m = distances.dim(0);
      const std::int64_t k = distances.dim(1);
      for (std::int64_t i = 0; i < m; ++i) {
        // Soft-min via softmax weights (numerically, no grad needed here).
        double max_neg = -1e300;
        for (std::int64_t c = 0; c < k; ++c) {
          max_neg = std::max(max_neg,
                             -static_cast<double>(distances.at(i * k + c)));
        }
        double denom = 0.0;
        double value = 0.0;
        for (std::int64_t c = 0; c < k; ++c) {
          const double d = distances.at(i * k + c);
          const double w = std::exp(-d - max_neg);
          denom += w;
          value += w * d;
        }
        value /= std::max(denom, 1e-12);
        // Spread the downsampled step's score over its source steps.
        for (std::int64_t t = i * stride;
             t < std::min<std::int64_t>((i + 1) * stride, t_len); ++t) {
          scores[static_cast<std::size_t>(t)] +=
              value / static_cast<double>(encoders_.size());
        }
      }
    }
    return std::vector<float>(scores.begin(), scores.end());
  }

 private:
  Tensor Features(const Tensor& x, std::size_t resolution) const {
    const std::int64_t stride = std::int64_t{1} << resolution;
    if (stride == 1) return encoders_[resolution]->Forward(x);
    std::vector<std::int64_t> picks;
    for (std::int64_t t = 0; t < x.dim(0); t += stride) picks.push_back(t);
    return encoders_[resolution]->Forward(ops::IndexRows(x, picks));
  }

  ThocOptions options_;
  std::vector<std::unique_ptr<nn::GruLayer>> encoders_;
  std::vector<Tensor> centers_;
};

ThocDetector::~ThocDetector() = default;

ThocDetector::ThocDetector(ThocOptions options)
    : options_(options), rng_(options.seed) {
  TFMAE_CHECK(options.num_resolutions >= 1 && options.num_clusters >= 1);
}

void ThocDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  const std::int64_t window = std::min(options_.window, normalized.length);

  net_ = std::make_unique<Net>(normalized.num_features, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, window, options_.stride);
  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (std::size_t index : order) {
      Tensor x = Tensor::FromData(
          {window, normalized.num_features},
          ExtractWindow(normalized, starts[index], window));
      Tensor loss = net_->Loss(x);
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<float> ThocDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);

  NoGradGuard no_grad;
  ScoreAccumulator accumulator(series.length);
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    Tensor x = Tensor::FromData(
        {window, normalized.num_features},
        ExtractWindow(normalized, start, window));
    accumulator.Add(start, net_->StepScores(x));
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
