#include "baselines/common.h"

#include "util/logging.h"

namespace tfmae::baselines {

std::vector<float> ExtractWindow(const data::TimeSeries& series,
                                 std::int64_t start, std::int64_t len) {
  TFMAE_CHECK(start >= 0 && start + len <= series.length);
  const std::int64_t n_feat = series.num_features;
  return std::vector<float>(
      series.values.begin() + static_cast<std::ptrdiff_t>(start * n_feat),
      series.values.begin() +
          static_cast<std::ptrdiff_t>((start + len) * n_feat));
}

ScoreAccumulator::ScoreAccumulator(std::int64_t length)
    : sum_(static_cast<std::size_t>(length), 0.0),
      count_(static_cast<std::size_t>(length), 0) {}

void ScoreAccumulator::Add(std::int64_t start,
                           const std::vector<float>& window_scores) {
  TFMAE_CHECK(start >= 0 &&
              start + static_cast<std::int64_t>(window_scores.size()) <=
                  static_cast<std::int64_t>(sum_.size()));
  for (std::size_t i = 0; i < window_scores.size(); ++i) {
    sum_[static_cast<std::size_t>(start) + i] += window_scores[i];
    ++count_[static_cast<std::size_t>(start) + i];
  }
}

void ScoreAccumulator::AddUniform(std::int64_t start, std::int64_t len,
                                  float score) {
  TFMAE_CHECK(start >= 0 &&
              start + len <= static_cast<std::int64_t>(sum_.size()));
  for (std::int64_t i = 0; i < len; ++i) {
    sum_[static_cast<std::size_t>(start + i)] += score;
    ++count_[static_cast<std::size_t>(start + i)];
  }
}

std::vector<float> ScoreAccumulator::Finalize() const {
  std::vector<float> scores(sum_.size(), 0.0f);
  for (std::size_t i = 0; i < sum_.size(); ++i) {
    if (count_[i] > 0) {
      scores[i] = static_cast<float>(sum_[i] / count_[i]);
    }
  }
  return scores;
}

}  // namespace tfmae::baselines
