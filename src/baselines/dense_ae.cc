#include "baselines/dense_ae.h"

#include "baselines/common.h"
#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {

/// Encoder-decoder MLP over the flattened window.
class DenseAeDetector::Net : public nn::Module {
 public:
  Net(std::int64_t input_dim, const DenseAeOptions& options, Rng* rng)
      : enc1_(input_dim, options.hidden, rng),
        enc2_(options.hidden, options.latent, rng),
        dec1_(options.latent, options.hidden, rng),
        dec2_(options.hidden, input_dim, rng) {
    RegisterModule("enc1", &enc1_);
    RegisterModule("enc2", &enc2_);
    RegisterModule("dec1", &dec1_);
    RegisterModule("dec2", &dec2_);
  }

  Tensor Encode(const Tensor& x) const {
    return ops::Relu(enc2_.Forward(ops::Relu(enc1_.Forward(x))));
  }

  Tensor Decode(const Tensor& z) const {
    return dec2_.Forward(ops::Relu(dec1_.Forward(z)));
  }

  Tensor Reconstruct(const Tensor& x) const { return Decode(Encode(x)); }

 private:
  nn::Linear enc1_;
  nn::Linear enc2_;
  nn::Linear dec1_;
  nn::Linear dec2_;
};

DenseAeDetector::~DenseAeDetector() = default;

DenseAeDetector::DenseAeDetector(DenseAeOptions options, std::string name)
    : name_(std::move(name)), options_(options), rng_(options.seed) {}

void DenseAeDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t input_dim = window * normalized.num_features;

  net_ = std::make_unique<Net>(input_dim, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, window, options_.stride);
  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (std::size_t index : order) {
      const std::vector<float> values =
          ExtractWindow(normalized, starts[index], window);
      Tensor x = Tensor::FromData({1, input_dim}, values);
      Tensor loss = ops::MseLoss(net_->Reconstruct(x), x);
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<float> DenseAeDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t n_feat = normalized.num_features;
  const std::int64_t input_dim = window * n_feat;

  NoGradGuard no_grad;
  ScoreAccumulator accumulator(series.length);
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    const std::vector<float> values = ExtractWindow(normalized, start, window);
    Tensor x = Tensor::FromData({1, input_dim}, values);
    Tensor reconstruction = net_->Reconstruct(x);
    const float* rec = reconstruction.data();
    std::vector<float> window_scores(static_cast<std::size_t>(window), 0.0f);
    for (std::int64_t t = 0; t < window; ++t) {
      double err = 0.0;
      for (std::int64_t n = 0; n < n_feat; ++n) {
        const double d = static_cast<double>(values[static_cast<std::size_t>(
                             t * n_feat + n)]) -
                         static_cast<double>(rec[t * n_feat + n]);
        err += d * d;
      }
      window_scores[static_cast<std::size_t>(t)] =
          static_cast<float>(err / static_cast<double>(n_feat));
    }
    accumulator.Add(start, window_scores);
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
