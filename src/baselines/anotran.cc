#include "baselines/anotran.h"

#include <cmath>

#include "baselines/common.h"
#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {
namespace {

// Mean over the head axis of a [H, T, T] weight tensor -> [T, T],
// composed from existing differentiable ops.
Tensor MeanOverHeads(const Tensor& weights) {
  const std::int64_t heads = weights.dim(0);
  const std::int64_t t_len = weights.dim(1);
  Tensor flat = ops::Reshape(weights, {heads, t_len * t_len});
  Tensor by_cell = ops::Transpose2(flat);  // [T*T, H]
  Tensor ones = Tensor::Full({heads, 1}, 1.0f / static_cast<float>(heads));
  Tensor mean = ops::MatMul(by_cell, ones);  // [T*T, 1]
  return ops::Reshape(mean, {t_len, t_len});
}

// Squared temporal distance matrix (i - j)^2, constant.
Tensor DistanceSquared(std::int64_t t_len) {
  Tensor dist = Tensor::Empty({t_len, t_len});
  for (std::int64_t i = 0; i < t_len; ++i) {
    for (std::int64_t j = 0; j < t_len; ++j) {
      const float d = static_cast<float>(i - j);
      dist.data()[i * t_len + j] = d * d;
    }
  }
  return dist;
}

// Row-normalized Gaussian prior association from per-position widths
// sigma [T, 1]: p_ij = exp(-(i-j)^2 / (2 sigma_i^2)) / row sum.
Tensor PriorAssociation(const Tensor& sigma, const Tensor& dist2) {
  const std::int64_t t_len = sigma.dim(0);
  Tensor ones_row = Tensor::Full({1, t_len}, 1.0f);
  Tensor ones_col = Tensor::Full({t_len, 1}, 1.0f);
  // 1 / (2 sigma^2), broadcast across each row.
  Tensor inv = ops::Div(Tensor::Full({t_len, 1}, 1.0f),
                        ops::AddScalar(ops::Scale(ops::Square(sigma), 2.0f),
                                       1e-6f));
  Tensor inv_full = ops::MatMul(inv, ones_row);            // [T, T]
  Tensor kernel = ops::Exp(ops::Neg(ops::Mul(dist2, inv_full)));
  Tensor row_sum = ops::MatMul(kernel, ones_col);          // [T, 1]
  Tensor row_sum_full = ops::MatMul(row_sum, ones_row);    // [T, T]
  return ops::Div(kernel, row_sum_full);
}

// Symmetric KL between corresponding rows of two row-stochastic matrices,
// averaged over rows -> scalar (differentiable).
Tensor RowSymmetricKl(const Tensor& p, const Tensor& q) {
  Tensor forward = ops::Mul(p, ops::Sub(ops::Log(p), ops::Log(q)));
  Tensor backward = ops::Mul(q, ops::Sub(ops::Log(q), ops::Log(p)));
  const float inv_rows = 1.0f / static_cast<float>(p.dim(0));
  return ops::Scale(ops::SumAll(ops::Add(forward, backward)), inv_rows);
}

// Non-differentiable per-row symmetric KL (for scoring).
std::vector<double> RowSymmetricKlValues(const Tensor& p, const Tensor& q) {
  const std::int64_t rows = p.dim(0);
  const std::int64_t cols = p.dim(1);
  std::vector<double> values(static_cast<std::size_t>(rows), 0.0);
  for (std::int64_t i = 0; i < rows; ++i) {
    double acc = 0.0;
    for (std::int64_t j = 0; j < cols; ++j) {
      const double pv = std::max<double>(p.data()[i * cols + j], 1e-12);
      const double qv = std::max<double>(q.data()[i * cols + j], 1e-12);
      acc += pv * std::log(pv / qv) + qv * std::log(qv / pv);
    }
    values[static_cast<std::size_t>(i)] = acc;
  }
  return values;
}

}  // namespace

/// Transformer trunk that exposes per-layer series/prior associations.
class AnoTranDetector::Net : public nn::Module {
 public:
  Net(std::int64_t num_features, const AnoTranOptions& options, Rng* rng)
      : options_(options),
        proj_(num_features, options.model_dim, rng),
        recon_(options.model_dim, num_features, rng) {
    RegisterModule("proj", &proj_);
    RegisterModule("recon", &recon_);
    for (std::int64_t l = 0; l < options.num_layers; ++l) {
      attention_.push_back(std::make_unique<nn::MultiHeadSelfAttention>(
          options.model_dim, options.num_heads, rng));
      feed_forward_.push_back(std::make_unique<nn::FeedForward>(
          options.model_dim, options.ff_hidden, rng));
      norm1_.push_back(std::make_unique<nn::LayerNorm>(options.model_dim));
      norm2_.push_back(std::make_unique<nn::LayerNorm>(options.model_dim));
      sigma_head_.push_back(
          std::make_unique<nn::Linear>(options.model_dim, 1, rng));
      const std::string suffix = std::to_string(l);
      RegisterModule("attn" + suffix, attention_.back().get());
      RegisterModule("ffn" + suffix, feed_forward_.back().get());
      RegisterModule("norm1_" + suffix, norm1_.back().get());
      RegisterModule("norm2_" + suffix, norm2_.back().get());
      RegisterModule("sigma" + suffix, sigma_head_.back().get());
    }
  }

  struct Associations {
    Tensor reconstruction;        // [T, N]
    std::vector<Tensor> series;   // per layer, [T, T]
    std::vector<Tensor> prior;    // per layer, [T, T]
  };

  Associations Forward(const Tensor& x) const {
    const std::int64_t t_len = x.dim(0);
    std::vector<std::int64_t> positions(static_cast<std::size_t>(t_len));
    for (std::size_t i = 0; i < positions.size(); ++i) {
      positions[i] = static_cast<std::int64_t>(i);
    }
    Tensor dist2 = DistanceSquared(t_len);

    Associations out;
    Tensor h = nn::AddPositionalEncoding(proj_.Forward(x), positions);
    for (std::size_t l = 0; l < attention_.size(); ++l) {
      Tensor weights;
      Tensor context = attention_[l]->ForwardWithWeights(h, &weights);
      out.series.push_back(MeanOverHeads(weights));
      // Per-position Gaussian width in (0.5, 3.5), predicted from h.
      Tensor sigma = ops::AddScalar(
          ops::Scale(ops::Sigmoid(sigma_head_[l]->Forward(h)), 3.0f), 0.5f);
      out.prior.push_back(PriorAssociation(sigma, dist2));
      h = norm1_[l]->Forward(ops::Add(h, context));
      h = norm2_[l]->Forward(ops::Add(h, feed_forward_[l]->Forward(h)));
    }
    out.reconstruction = recon_.Forward(h);
    return out;
  }

 private:
  AnoTranOptions options_;
  nn::Linear proj_;
  nn::Linear recon_;
  std::vector<std::unique_ptr<nn::MultiHeadSelfAttention>> attention_;
  std::vector<std::unique_ptr<nn::FeedForward>> feed_forward_;
  std::vector<std::unique_ptr<nn::LayerNorm>> norm1_;
  std::vector<std::unique_ptr<nn::LayerNorm>> norm2_;
  std::vector<std::unique_ptr<nn::Linear>> sigma_head_;
};

AnoTranDetector::~AnoTranDetector() = default;

AnoTranDetector::AnoTranDetector(AnoTranOptions options)
    : options_(options), rng_(options.seed) {}

void AnoTranDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  const std::int64_t window = std::min(options_.window, normalized.length);

  net_ = std::make_unique<Net>(normalized.num_features, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, window, options_.stride);
  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (std::size_t index : order) {
      Tensor x = Tensor::FromData(
          {window, normalized.num_features},
          ExtractWindow(normalized, starts[index], window));
      const Net::Associations assoc = net_->Forward(x);
      Tensor loss = ops::MseLoss(assoc.reconstruction, x);
      // Minimax association discrepancy: the prior chases the detached
      // series association; the series association runs from the detached
      // prior (both averaged over layers).
      Tensor minimize_stage;
      Tensor maximize_stage;
      for (std::size_t l = 0; l < assoc.series.size(); ++l) {
        Tensor min_term =
            RowSymmetricKl(assoc.prior[l], assoc.series[l].Detach());
        Tensor max_term =
            RowSymmetricKl(assoc.prior[l].Detach(), assoc.series[l]);
        minimize_stage = l == 0 ? min_term : ops::Add(minimize_stage, min_term);
        maximize_stage = l == 0 ? max_term : ops::Add(maximize_stage, max_term);
      }
      const float layer_scale =
          options_.discrepancy_weight /
          static_cast<float>(assoc.series.size());
      loss = ops::Add(loss, ops::Scale(minimize_stage, layer_scale));
      loss = ops::Sub(loss, ops::Scale(maximize_stage, layer_scale));
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<float> AnoTranDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t n_feat = normalized.num_features;

  NoGradGuard no_grad;
  ScoreAccumulator accumulator(series.length);
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    const std::vector<float> values = ExtractWindow(normalized, start, window);
    Tensor x = Tensor::FromData({window, n_feat}, values);
    const Net::Associations assoc = net_->Forward(x);

    // Mean association discrepancy per time step across layers.
    std::vector<double> discrepancy(static_cast<std::size_t>(window), 0.0);
    for (std::size_t l = 0; l < assoc.series.size(); ++l) {
      const auto layer_values =
          RowSymmetricKlValues(assoc.prior[l], assoc.series[l]);
      for (std::size_t t = 0; t < layer_values.size(); ++t) {
        discrepancy[t] += layer_values[t] / assoc.series.size();
      }
    }
    // softmax(-discrepancy) over the window re-weights reconstruction error
    // (the original paper's anomaly criterion).
    double max_neg = -1e300;
    for (double d : discrepancy) max_neg = std::max(max_neg, -d);
    std::vector<double> weight(static_cast<std::size_t>(window), 0.0);
    double denom = 0.0;
    for (std::size_t t = 0; t < weight.size(); ++t) {
      weight[t] = std::exp(-discrepancy[t] - max_neg);
      denom += weight[t];
    }
    std::vector<float> window_scores(static_cast<std::size_t>(window), 0.0f);
    const float* rec = assoc.reconstruction.data();
    for (std::int64_t t = 0; t < window; ++t) {
      double err = 0.0;
      for (std::int64_t n = 0; n < n_feat; ++n) {
        const double d = static_cast<double>(values[static_cast<std::size_t>(
                             t * n_feat + n)]) -
                         static_cast<double>(rec[t * n_feat + n]);
        err += d * d;
      }
      err /= static_cast<double>(n_feat);
      window_scores[static_cast<std::size_t>(t)] = static_cast<float>(
          err * weight[static_cast<std::size_t>(t)] /
          std::max(denom, 1e-12) * static_cast<double>(window));
    }
    accumulator.Add(start, window_scores);
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
