#include "baselines/usad.h"

#include "baselines/common.h"
#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {

/// Shared encoder E with two decoders D1, D2 (all MLPs).
class UsadDetector::Net : public nn::Module {
 public:
  Net(std::int64_t input_dim, const UsadOptions& options, Rng* rng)
      : enc1_(input_dim, options.hidden, rng),
        enc2_(options.hidden, options.latent, rng),
        dec1a_(options.latent, options.hidden, rng),
        dec1b_(options.hidden, input_dim, rng),
        dec2a_(options.latent, options.hidden, rng),
        dec2b_(options.hidden, input_dim, rng) {
    RegisterModule("enc1", &enc1_);
    RegisterModule("enc2", &enc2_);
    RegisterModule("dec1a", &dec1a_);
    RegisterModule("dec1b", &dec1b_);
    RegisterModule("dec2a", &dec2a_);
    RegisterModule("dec2b", &dec2b_);
  }

  Tensor Encode(const Tensor& x) const {
    return ops::Relu(enc2_.Forward(ops::Relu(enc1_.Forward(x))));
  }
  Tensor Decode1(const Tensor& z) const {
    return dec1b_.Forward(ops::Relu(dec1a_.Forward(z)));
  }
  Tensor Decode2(const Tensor& z) const {
    return dec2b_.Forward(ops::Relu(dec2a_.Forward(z)));
  }

 private:
  nn::Linear enc1_;
  nn::Linear enc2_;
  nn::Linear dec1a_;
  nn::Linear dec1b_;
  nn::Linear dec2a_;
  nn::Linear dec2b_;
};

UsadDetector::~UsadDetector() = default;

UsadDetector::UsadDetector(UsadOptions options)
    : options_(options), rng_(options.seed) {}

void UsadDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t input_dim = window * normalized.num_features;

  net_ = std::make_unique<Net>(input_dim, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, window, options_.stride);
  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    // USAD's epoch-dependent adversarial weighting: 1/n on the direct term,
    // (1 - 1/n) on the adversarial term.
    const float inv_n = 1.0f / static_cast<float>(epoch + 1);
    for (std::size_t index : order) {
      Tensor x = Tensor::FromData(
          {1, input_dim}, ExtractWindow(normalized, starts[index], window));
      Tensor z = net_->Encode(x);
      Tensor ae1 = net_->Decode1(z);
      Tensor ae2 = net_->Decode2(z);
      Tensor ae2_of_ae1 = net_->Decode2(net_->Encode(ae1));

      // Phase-1 objective (trains AE1): reconstruct x and fool D2.
      Tensor loss1 =
          ops::Add(ops::Scale(ops::MseLoss(ae1, x), inv_n),
                   ops::Scale(ops::MseLoss(ae2_of_ae1, x), 1.0f - inv_n));
      // Phase-2 objective (trains AE2): reconstruct x, and push its
      // reconstruction of AE1's output away from x (adversarial term).
      Tensor loss2 = ops::Sub(
          ops::Scale(ops::MseLoss(ae2, x), inv_n),
          ops::Scale(ops::MseLoss(net_->Decode2(net_->Encode(ae1.Detach())), x),
                     1.0f - inv_n));

      Tensor loss = ops::Add(loss1, loss2);
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<float> UsadDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t n_feat = normalized.num_features;
  const std::int64_t input_dim = window * n_feat;

  NoGradGuard no_grad;
  ScoreAccumulator accumulator(series.length);
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    const std::vector<float> values = ExtractWindow(normalized, start, window);
    Tensor x = Tensor::FromData({1, input_dim}, values);
    Tensor ae1 = net_->Decode1(net_->Encode(x));
    Tensor ae2_of_ae1 = net_->Decode2(net_->Encode(ae1));
    const float* r1 = ae1.data();
    const float* r2 = ae2_of_ae1.data();
    std::vector<float> window_scores(static_cast<std::size_t>(window), 0.0f);
    for (std::int64_t t = 0; t < window; ++t) {
      double err = 0.0;
      for (std::int64_t n = 0; n < n_feat; ++n) {
        const std::int64_t flat = t * n_feat + n;
        const double xv = values[static_cast<std::size_t>(flat)];
        const double d1 = xv - static_cast<double>(r1[flat]);
        const double d2 = xv - static_cast<double>(r2[flat]);
        err += options_.alpha * d1 * d1 + options_.beta * d2 * d2;
      }
      window_scores[static_cast<std::size_t>(t)] =
          static_cast<float>(err / static_cast<double>(n_feat));
    }
    accumulator.Add(start, window_scores);
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
