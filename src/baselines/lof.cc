#include "baselines/lof.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/rng.h"

namespace tfmae::baselines {
namespace {

double SquaredDistance(const float* a, const float* b, std::int64_t dim) {
  double acc = 0.0;
  for (std::int64_t i = 0; i < dim; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc;
}

}  // namespace

LofDetector::LofDetector(std::int64_t num_neighbors,
                         std::int64_t max_train_points)
    : num_neighbors_(num_neighbors), max_train_points_(max_train_points) {
  TFMAE_CHECK(num_neighbors >= 1 && max_train_points >= num_neighbors + 1);
}

void LofDetector::KnnOfPoint(const float* point, std::int64_t skip,
                             std::vector<std::int64_t>* indices,
                             std::vector<double>* distances) const {
  std::vector<std::pair<double, std::int64_t>> heap;  // max-heap of size k
  heap.reserve(static_cast<std::size_t>(num_neighbors_) + 1);
  for (std::int64_t j = 0; j < num_train_; ++j) {
    if (j == skip) continue;
    const double dist = SquaredDistance(
        point, train_points_.data() + j * num_features_, num_features_);
    if (static_cast<std::int64_t>(heap.size()) < num_neighbors_) {
      heap.emplace_back(dist, j);
      std::push_heap(heap.begin(), heap.end());
    } else if (dist < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {dist, j};
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::sort_heap(heap.begin(), heap.end());
  indices->clear();
  distances->clear();
  for (const auto& [dist, j] : heap) {
    indices->push_back(j);
    distances->push_back(std::sqrt(dist));
  }
}

void LofDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  num_features_ = normalized.num_features;

  // Optional subsampling to keep the quadratic neighbor search bounded.
  num_train_ = std::min<std::int64_t>(normalized.length, max_train_points_);
  train_points_.resize(
      static_cast<std::size_t>(num_train_ * num_features_));
  if (num_train_ == normalized.length) {
    std::copy(normalized.values.begin(), normalized.values.end(),
              train_points_.begin());
  } else {
    Rng rng(17);
    const auto picks =
        rng.SampleWithoutReplacement(normalized.length, num_train_);
    for (std::int64_t i = 0; i < num_train_; ++i) {
      for (std::int64_t n = 0; n < num_features_; ++n) {
        train_points_[static_cast<std::size_t>(i * num_features_ + n)] =
            normalized.at(picks[static_cast<std::size_t>(i)], n);
      }
    }
  }

  // k-distance and local reachability density of every training point.
  train_kdist_.assign(static_cast<std::size_t>(num_train_), 0.0);
  std::vector<std::vector<std::int64_t>> neighbor_ids(
      static_cast<std::size_t>(num_train_));
  std::vector<std::vector<double>> neighbor_dists(
      static_cast<std::size_t>(num_train_));
  for (std::int64_t i = 0; i < num_train_; ++i) {
    KnnOfPoint(train_points_.data() + i * num_features_, i,
               &neighbor_ids[static_cast<std::size_t>(i)],
               &neighbor_dists[static_cast<std::size_t>(i)]);
    train_kdist_[static_cast<std::size_t>(i)] =
        neighbor_dists[static_cast<std::size_t>(i)].back();
  }
  train_lrd_.assign(static_cast<std::size_t>(num_train_), 0.0);
  for (std::int64_t i = 0; i < num_train_; ++i) {
    double reach_sum = 0.0;
    const auto& ids = neighbor_ids[static_cast<std::size_t>(i)];
    const auto& dists = neighbor_dists[static_cast<std::size_t>(i)];
    for (std::size_t m = 0; m < ids.size(); ++m) {
      reach_sum += std::max(
          dists[m], train_kdist_[static_cast<std::size_t>(ids[m])]);
    }
    train_lrd_[static_cast<std::size_t>(i)] =
        static_cast<double>(ids.size()) / std::max(reach_sum, 1e-12);
  }
  fitted_ = true;
}

std::vector<float> LofDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  std::vector<float> scores(static_cast<std::size_t>(series.length));
  std::vector<std::int64_t> ids;
  std::vector<double> dists;
  for (std::int64_t t = 0; t < normalized.length; ++t) {
    const float* point = normalized.values.data() + t * num_features_;
    KnnOfPoint(point, /*skip=*/-1, &ids, &dists);
    double reach_sum = 0.0;
    double neighbor_lrd_sum = 0.0;
    for (std::size_t m = 0; m < ids.size(); ++m) {
      reach_sum += std::max(
          dists[m], train_kdist_[static_cast<std::size_t>(ids[m])]);
      neighbor_lrd_sum += train_lrd_[static_cast<std::size_t>(ids[m])];
    }
    const double lrd =
        static_cast<double>(ids.size()) / std::max(reach_sum, 1e-12);
    const double lof =
        neighbor_lrd_sum / (static_cast<double>(ids.size()) *
                            std::max(lrd, 1e-12));
    scores[static_cast<std::size_t>(t)] = static_cast<float>(lof);
  }
  return scores;
}

}  // namespace tfmae::baselines
