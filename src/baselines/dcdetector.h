// DCdetector-lite (Yang et al., KDD 2023) — the contrastive-family baseline:
// two attention branches over different patch granularities of the same
// window, trained with a positive-pair (stop-gradient) alignment objective;
// the anomaly score is the per-point representation discrepancy.
// Simplification vs. the original: the dual-attention branches are a
// point-granularity Transformer and a patch-averaged Transformer (patch
// embedding via mean pooling) instead of in-patch/cross-patch attention; the
// defining mechanism — multi-granularity views + pure positive contrastive
// discrepancy — is preserved.
#ifndef TFMAE_BASELINES_DCDETECTOR_H_
#define TFMAE_BASELINES_DCDETECTOR_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters of DCdetector-lite.
struct DcDetectorOptions {
  std::int64_t window = 50;
  std::int64_t stride = 25;
  std::int64_t patch = 5;     ///< patch size of the coarse branch
  std::int64_t model_dim = 32;
  std::int64_t num_heads = 4;
  std::int64_t num_layers = 2;
  std::int64_t ff_hidden = 64;
  int epochs = 30;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 43;
};

/// DCdetector-lite detector.
class DcDetector : public core::AnomalyDetector {
 public:
  explicit DcDetector(DcDetectorOptions options = {});
  ~DcDetector() override;

  std::string Name() const override { return "DCdetector"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  DcDetectorOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_DCDETECTOR_H_
