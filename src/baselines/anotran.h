// AnomalyTransformer-lite (Xu et al., ICLR 2022) — the second
// contrastive-family baseline: anomalies are distinguished by their
// *association discrepancy*, the divergence between
//  * the series association S — the Transformer's learned attention rows,
//  * the prior association P — a learnable-width Gaussian kernel over the
//    temporal distance |i - j| (anomalies associate mostly with adjacent
//    points, so their S stays close to the local prior).
// Training is a minimax game on the discrepancy plus a reconstruction loss;
// the anomaly score multiplies reconstruction error by the softmax of the
// negated discrepancy.
// Simplification vs. the original: one association pair per layer with the
// per-position Gaussian width predicted by a linear head (as in the paper),
// but without multi-scale sigma clamping heuristics.
#ifndef TFMAE_BASELINES_ANOTRAN_H_
#define TFMAE_BASELINES_ANOTRAN_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters of AnomalyTransformer-lite.
struct AnoTranOptions {
  std::int64_t window = 50;
  std::int64_t stride = 25;
  std::int64_t model_dim = 32;
  std::int64_t num_heads = 4;
  std::int64_t num_layers = 2;
  std::int64_t ff_hidden = 64;
  int epochs = 30;
  float learning_rate = 1e-3f;
  float discrepancy_weight = 0.2f;  ///< lambda of the minimax objective
  std::uint64_t seed = 47;
};

/// AnomalyTransformer-lite detector.
class AnoTranDetector : public core::AnomalyDetector {
 public:
  explicit AnoTranDetector(AnoTranOptions options = {});
  ~AnoTranDetector() override;

  std::string Name() const override { return "AnoTran"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  AnoTranOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_ANOTRAN_H_
