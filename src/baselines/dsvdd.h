// Deep SVDD (Ruff et al., ICML 2018) — the deep clustering-family baseline:
// an encoder trained to map data close to a fixed hypersphere center; the
// anomaly score is the squared distance to the center.
#ifndef TFMAE_BASELINES_DSVDD_H_
#define TFMAE_BASELINES_DSVDD_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters of Deep SVDD.
struct DsvddOptions {
  std::int64_t window = 10;   ///< short sub-windows give per-point locality
  std::int64_t stride = 5;
  std::int64_t hidden = 48;
  std::int64_t latent = 16;
  int epochs = 30;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 29;
};

/// One-class Deep SVDD over flattened sub-windows.
class DsvddDetector : public core::AnomalyDetector {
 public:
  explicit DsvddDetector(DsvddOptions options = {});
  ~DsvddDetector() override;

  std::string Name() const override { return "DSVDD"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  DsvddOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  std::vector<float> center_;  // hypersphere center c
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_DSVDD_H_
