// Isolation Forest (Liu et al., ICDM 2008) — the tree-based baseline.
#ifndef TFMAE_BASELINES_IFOREST_H_
#define TFMAE_BASELINES_IFOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/anomaly_detector.h"

namespace tfmae::baselines {

/// Isolation forest over per-time-step observation vectors.
///
/// Standard formulation: `num_trees` random isolation trees, each built on a
/// subsample of `subsample_size` points; the anomaly score of a point is
/// 2^(-E[h(x)] / c(subsample_size)) where h is the isolation depth.
class IsolationForestDetector : public core::AnomalyDetector {
 public:
  IsolationForestDetector(std::int64_t num_trees = 100,
                          std::int64_t subsample_size = 256,
                          std::uint64_t seed = 23);

  std::string Name() const override { return "IForest"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  struct Node {
    // Internal nodes: split on feature < threshold; children by index.
    std::int64_t feature = -1;
    float threshold = 0.0f;
    std::int32_t left = -1;
    std::int32_t right = -1;
    // Leaves: number of points that fell here (for the c(n) correction).
    std::int64_t size = 0;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  /// Average path length of an unsuccessful BST search among n points.
  static double AveragePathLength(std::int64_t n);

  double PathLength(const Tree& tree, const float* point) const;

  std::int64_t num_trees_;
  std::int64_t subsample_size_;
  std::uint64_t seed_;
  std::int64_t num_features_ = 0;
  double normalization_ = 1.0;  // c(subsample_size)
  std::vector<Tree> trees_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_IFOREST_H_
