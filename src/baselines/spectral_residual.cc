#include "baselines/spectral_residual.h"

#include <algorithm>
#include <cmath>

#include "baselines/common.h"
#include "fft/convolution.h"
#include "fft/fft.h"
#include "util/logging.h"

namespace tfmae::baselines {

SpectralResidualDetector::SpectralResidualDetector(
    SpectralResidualOptions options)
    : options_(options) {
  TFMAE_CHECK(options.average_filter >= 1 && options.average_filter % 2 == 1);
}

std::vector<double> SpectralResidualDetector::SaliencyMap(
    const std::vector<double>& window, std::int64_t average_filter) {
  const std::int64_t n = static_cast<std::int64_t>(window.size());
  const std::vector<fft::Complex> spectrum = fft::RealFft(window);
  std::vector<double> log_amplitude(static_cast<std::size_t>(n));
  std::vector<double> phase(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    const auto& bin = spectrum[static_cast<std::size_t>(k)];
    log_amplitude[static_cast<std::size_t>(k)] =
        std::log(std::abs(bin) + 1e-8);
    phase[static_cast<std::size_t>(k)] = std::arg(bin);
  }
  // Residual = log amplitude minus its centered moving average.
  const std::int64_t half = average_filter / 2;
  std::vector<double> residual(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    double acc = 0.0;
    std::int64_t count = 0;
    for (std::int64_t j = k - half; j <= k + half; ++j) {
      if (j < 0 || j >= n) continue;
      acc += log_amplitude[static_cast<std::size_t>(j)];
      ++count;
    }
    residual[static_cast<std::size_t>(k)] =
        log_amplitude[static_cast<std::size_t>(k)] -
        acc / static_cast<double>(count);
  }
  // Saliency = |IDFT(exp(residual + i * phase))|.
  std::vector<fft::Complex> adjusted(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    const double amplitude = std::exp(residual[static_cast<std::size_t>(k)]);
    adjusted[static_cast<std::size_t>(k)] = fft::Complex(
        amplitude * std::cos(phase[static_cast<std::size_t>(k)]),
        amplitude * std::sin(phase[static_cast<std::size_t>(k)]));
  }
  const std::vector<fft::Complex> saliency_complex = fft::Ifft(adjusted);
  std::vector<double> saliency(static_cast<std::size_t>(n));
  for (std::int64_t t = 0; t < n; ++t) {
    saliency[static_cast<std::size_t>(t)] =
        std::abs(saliency_complex[static_cast<std::size_t>(t)]);
  }
  return saliency;
}

void SpectralResidualDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  fitted_ = true;
}

std::vector<float> SpectralResidualDetector::Score(
    const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);

  ScoreAccumulator accumulator(series.length);
  std::vector<double> column(static_cast<std::size_t>(window));
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    std::vector<float> window_scores(static_cast<std::size_t>(window), 0.0f);
    for (std::int64_t n = 0; n < normalized.num_features; ++n) {
      for (std::int64_t t = 0; t < window; ++t) {
        column[static_cast<std::size_t>(t)] = normalized.at(start + t, n);
      }
      const std::vector<double> saliency =
          SaliencyMap(column, options_.average_filter);
      // Final score: relative deviation of the saliency from its local mean
      // (the SR paper's detection rule).
      const std::int64_t half = options_.saliency_filter / 2;
      for (std::int64_t t = 0; t < window; ++t) {
        double acc = 0.0;
        std::int64_t count = 0;
        for (std::int64_t j = t - half; j <= t; ++j) {
          if (j < 0) continue;
          acc += saliency[static_cast<std::size_t>(j)];
          ++count;
        }
        const double local_mean = acc / std::max<std::int64_t>(count, 1);
        window_scores[static_cast<std::size_t>(t)] += static_cast<float>(
            (saliency[static_cast<std::size_t>(t)] - local_mean) /
            (local_mean + 1e-8));
      }
    }
    accumulator.Add(start, window_scores);
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
