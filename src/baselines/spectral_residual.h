// Spectral Residual (Ren et al., KDD 2019 — "Time-Series Anomaly Detection
// Service at Microsoft") — the statistical frequency-domain detector that
// underlies the paper's label-based SR-CNN family. The saliency map is the
// inverse transform of the residual between the log-amplitude spectrum and
// its local average; salient points are anomalies.
// (Representative of the family without the CNN trained on synthetic
// labels; see DESIGN.md §3.)
#ifndef TFMAE_BASELINES_SPECTRAL_RESIDUAL_H_
#define TFMAE_BASELINES_SPECTRAL_RESIDUAL_H_

#include "core/anomaly_detector.h"

namespace tfmae::baselines {

/// Hyper-parameters of the spectral-residual detector.
struct SpectralResidualOptions {
  std::int64_t window = 128;       ///< transform window (sliding, per score)
  std::int64_t stride = 64;
  std::int64_t average_filter = 3; ///< log-spectrum smoothing width (odd)
  std::int64_t saliency_filter = 21;  ///< local mean width for the score
};

/// Spectral-residual detector over each feature independently (scores are
/// summed across features). Training only fits the normalizer.
class SpectralResidualDetector : public core::AnomalyDetector {
 public:
  explicit SpectralResidualDetector(SpectralResidualOptions options = {});

  std::string Name() const override { return "SpectralRes"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

  /// Saliency map of one univariate window (exposed for tests).
  static std::vector<double> SaliencyMap(const std::vector<double>& window,
                                         std::int64_t average_filter);

 private:
  SpectralResidualOptions options_;
  data::ZScoreNormalizer normalizer_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_SPECTRAL_RESIDUAL_H_
