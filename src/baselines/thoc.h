// THOC-lite (Shen et al., NeurIPS 2020 — Temporal Hierarchical One-Class
// network) — the deep clustering baseline: multi-resolution recurrent
// features are matched against learned cluster centers per resolution, and
// the anomaly score is the (weighted) distance of each step's features to
// their best-matching clusters.
// Simplification vs. the original: dilation is realized by striding GRU
// passes at multiple temporal resolutions (1x, 2x, 4x) instead of the
// dilated-skip RNN, and the hierarchical cluster assignment is a softmax
// over per-resolution centers rather than the differentiable hierarchical
// clustering network; the defining mechanism — multi-scale temporal
// features + one-class distance to learned centers — is preserved.
#ifndef TFMAE_BASELINES_THOC_H_
#define TFMAE_BASELINES_THOC_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/gru.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters of THOC-lite.
struct ThocOptions {
  std::int64_t window = 50;
  std::int64_t stride = 25;
  std::int64_t hidden = 24;       ///< GRU width per resolution
  int num_clusters = 4;           ///< centers per resolution
  int num_resolutions = 3;        ///< temporal strides 1, 2, 4, ...
  int epochs = 20;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 67;
};

/// THOC-lite detector.
class ThocDetector : public core::AnomalyDetector {
 public:
  explicit ThocDetector(ThocOptions options = {});
  ~ThocDetector() override;

  std::string Name() const override { return "THOC"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  ThocOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_THOC_H_
