#include "baselines/conv_ae.h"

#include "baselines/common.h"
#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {

/// conv1d(k) -> GELU -> conv1d(k) -> GELU (bottleneck) -> conv1d(k) -> GELU
/// -> conv1d(k) back to the feature count. conv1d is Im2Col + Linear.
class ConvAeDetector::Net : public nn::Module {
 public:
  Net(std::int64_t num_features, const ConvAeOptions& options, Rng* rng)
      : kernel_(options.kernel),
        conv1_(options.kernel * num_features, options.channels, rng),
        conv2_(options.kernel * options.channels, options.channels / 2, rng),
        conv3_(options.kernel * (options.channels / 2), options.channels, rng),
        conv4_(options.kernel * options.channels, num_features, rng) {
    RegisterModule("conv1", &conv1_);
    RegisterModule("conv2", &conv2_);
    RegisterModule("conv3", &conv3_);
    RegisterModule("conv4", &conv4_);
  }

  /// x: [T, N] -> reconstruction [T, N].
  Tensor Reconstruct(const Tensor& x) const {
    Tensor h = ops::Gelu(conv1_.Forward(ops::Im2Col(x, kernel_)));
    h = ops::Gelu(conv2_.Forward(ops::Im2Col(h, kernel_)));
    h = ops::Gelu(conv3_.Forward(ops::Im2Col(h, kernel_)));
    return conv4_.Forward(ops::Im2Col(h, kernel_));
  }

 private:
  std::int64_t kernel_;
  nn::Linear conv1_;
  nn::Linear conv2_;
  nn::Linear conv3_;
  nn::Linear conv4_;
};

ConvAeDetector::~ConvAeDetector() = default;

ConvAeDetector::ConvAeDetector(ConvAeOptions options, std::string name)
    : name_(std::move(name)), options_(options), rng_(options.seed) {
  TFMAE_CHECK(options.kernel % 2 == 1 && options.channels >= 2);
}

void ConvAeDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  const std::int64_t window = std::min(options_.window, normalized.length);

  net_ = std::make_unique<Net>(normalized.num_features, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, window, options_.stride);
  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (std::size_t index : order) {
      const std::vector<float> values =
          ExtractWindow(normalized, starts[index], window);
      Tensor x =
          Tensor::FromData({window, normalized.num_features}, values);
      Tensor loss = ops::MseLoss(net_->Reconstruct(x), x);
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<float> ConvAeDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t n_feat = normalized.num_features;

  NoGradGuard no_grad;
  ScoreAccumulator accumulator(series.length);
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    const std::vector<float> values = ExtractWindow(normalized, start, window);
    Tensor x = Tensor::FromData({window, n_feat}, values);
    Tensor reconstruction = net_->Reconstruct(x);
    const float* rec = reconstruction.data();
    std::vector<float> window_scores(static_cast<std::size_t>(window), 0.0f);
    for (std::int64_t t = 0; t < window; ++t) {
      double err = 0.0;
      for (std::int64_t n = 0; n < n_feat; ++n) {
        const double d = static_cast<double>(values[static_cast<std::size_t>(
                             t * n_feat + n)]) -
                         static_cast<double>(rec[t * n_feat + n]);
        err += d * d;
      }
      window_scores[static_cast<std::size_t>(t)] =
          static_cast<float>(err / static_cast<double>(n_feat));
    }
    accumulator.Add(start, window_scores);
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
