#include "baselines/dagmm.h"

#include <algorithm>
#include <cmath>

#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {

void GaussianMixture::Fit(const std::vector<float>& points, std::int64_t n,
                          std::int64_t dim, int components, int iterations,
                          Rng* rng) {
  TFMAE_CHECK(n >= components && dim >= 1 && components >= 1);
  dim_ = dim;
  const int k_comp = components;
  weights_.assign(static_cast<std::size_t>(k_comp),
                  1.0 / static_cast<double>(k_comp));
  means_.assign(static_cast<std::size_t>(k_comp * dim), 0.0);
  variances_.assign(static_cast<std::size_t>(k_comp * dim), 1.0);

  // Initialize means at random data points.
  const auto picks = rng->SampleWithoutReplacement(n, k_comp);
  for (int k = 0; k < k_comp; ++k) {
    for (std::int64_t d = 0; d < dim; ++d) {
      means_[static_cast<std::size_t>(k * dim + d)] =
          points[static_cast<std::size_t>(picks[static_cast<std::size_t>(k)] *
                                              dim +
                                          d)];
    }
  }

  std::vector<double> responsibility(
      static_cast<std::size_t>(n * k_comp), 0.0);
  for (int iteration = 0; iteration < iterations; ++iteration) {
    // E-step: responsibilities via log-sum-exp.
    for (std::int64_t i = 0; i < n; ++i) {
      double max_log = -1e300;
      std::vector<double> logp(static_cast<std::size_t>(k_comp));
      for (int k = 0; k < k_comp; ++k) {
        double acc = std::log(std::max(weights_[static_cast<std::size_t>(k)],
                                       1e-12));
        for (std::int64_t d = 0; d < dim; ++d) {
          const double var = std::max(
              variances_[static_cast<std::size_t>(k * dim + d)], 1e-6);
          const double diff =
              static_cast<double>(points[static_cast<std::size_t>(i * dim + d)]) -
              means_[static_cast<std::size_t>(k * dim + d)];
          acc += -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
        }
        logp[static_cast<std::size_t>(k)] = acc;
        max_log = std::max(max_log, acc);
      }
      double denom = 0.0;
      for (int k = 0; k < k_comp; ++k) {
        denom += std::exp(logp[static_cast<std::size_t>(k)] - max_log);
      }
      for (int k = 0; k < k_comp; ++k) {
        responsibility[static_cast<std::size_t>(i * k_comp + k)] =
            std::exp(logp[static_cast<std::size_t>(k)] - max_log) / denom;
      }
    }
    // M-step.
    for (int k = 0; k < k_comp; ++k) {
      double resp_sum = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        resp_sum += responsibility[static_cast<std::size_t>(i * k_comp + k)];
      }
      weights_[static_cast<std::size_t>(k)] =
          std::max(resp_sum / static_cast<double>(n), 1e-6);
      for (std::int64_t d = 0; d < dim; ++d) {
        double mean_acc = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
          mean_acc +=
              responsibility[static_cast<std::size_t>(i * k_comp + k)] *
              static_cast<double>(
                  points[static_cast<std::size_t>(i * dim + d)]);
        }
        const double mean = mean_acc / std::max(resp_sum, 1e-12);
        double var_acc = 0.0;
        for (std::int64_t i = 0; i < n; ++i) {
          const double diff =
              static_cast<double>(
                  points[static_cast<std::size_t>(i * dim + d)]) -
              mean;
          var_acc += responsibility[static_cast<std::size_t>(i * k_comp + k)] *
                     diff * diff;
        }
        means_[static_cast<std::size_t>(k * dim + d)] = mean;
        variances_[static_cast<std::size_t>(k * dim + d)] =
            std::max(var_acc / std::max(resp_sum, 1e-12), 1e-6);
      }
    }
  }
}

double GaussianMixture::Energy(const float* point) const {
  double max_log = -1e300;
  std::vector<double> logp(weights_.size());
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    double acc = std::log(std::max(weights_[k], 1e-12));
    for (std::int64_t d = 0; d < dim_; ++d) {
      const double var =
          std::max(variances_[k * static_cast<std::size_t>(dim_) +
                              static_cast<std::size_t>(d)],
                   1e-6);
      const double diff =
          static_cast<double>(point[d]) -
          means_[k * static_cast<std::size_t>(dim_) +
                 static_cast<std::size_t>(d)];
      acc += -0.5 * (std::log(2.0 * M_PI * var) + diff * diff / var);
    }
    logp[k] = acc;
    max_log = std::max(max_log, acc);
  }
  double sum = 0.0;
  for (double lp : logp) sum += std::exp(lp - max_log);
  return -(max_log + std::log(sum));
}

/// Small autoencoder producing the compression code.
class DagmmDetector::Net : public nn::Module {
 public:
  Net(std::int64_t input_dim, const DagmmOptions& options, Rng* rng)
      : enc1_(input_dim, options.hidden, rng),
        enc2_(options.hidden, options.latent, rng),
        dec1_(options.latent, options.hidden, rng),
        dec2_(options.hidden, input_dim, rng) {
    RegisterModule("enc1", &enc1_);
    RegisterModule("enc2", &enc2_);
    RegisterModule("dec1", &dec1_);
    RegisterModule("dec2", &dec2_);
  }

  Tensor Encode(const Tensor& x) const {
    return enc2_.Forward(ops::Tanh(enc1_.Forward(x)));
  }
  Tensor Decode(const Tensor& z) const {
    return dec2_.Forward(ops::Tanh(dec1_.Forward(z)));
  }

 private:
  nn::Linear enc1_;
  nn::Linear enc2_;
  nn::Linear dec1_;
  nn::Linear dec2_;
};

DagmmDetector::~DagmmDetector() = default;

DagmmDetector::DagmmDetector(DagmmOptions options)
    : options_(options), rng_(options.seed) {}

std::vector<float> DagmmDetector::CodeFor(const float* point) const {
  Tensor x = Tensor::FromData(
      {1, num_features_},
      std::vector<float>(point, point + num_features_));
  Tensor z = net_->Encode(x);
  Tensor reconstruction = net_->Decode(z);
  // Reconstruction features (as in the original DAGMM): relative euclidean
  // error and cosine similarity between input and reconstruction.
  double err = 0.0;
  double x_norm = 0.0;
  double r_norm = 0.0;
  double dot = 0.0;
  for (std::int64_t d = 0; d < num_features_; ++d) {
    const double xv = static_cast<double>(point[d]);
    const double rv = static_cast<double>(reconstruction.data()[d]);
    err += (xv - rv) * (xv - rv);
    x_norm += xv * xv;
    r_norm += rv * rv;
    dot += xv * rv;
  }
  std::vector<float> code(z.data(), z.data() + options_.latent);
  code.push_back(static_cast<float>(std::sqrt(err) /
                                    std::max(std::sqrt(x_norm), 1e-6)));
  code.push_back(static_cast<float>(
      dot / std::max(std::sqrt(x_norm * r_norm), 1e-6)));
  return code;
}

void DagmmDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  num_features_ = normalized.num_features;

  net_ = std::make_unique<Net>(num_features_, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  // Train the autoencoder on mini-batches of observation rows.
  const std::int64_t batch = 64;
  std::vector<std::int64_t> order(static_cast<std::size_t>(normalized.length));
  for (std::int64_t i = 0; i < normalized.length; ++i) {
    order[static_cast<std::size_t>(i)] = i;
  }
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (std::int64_t begin = 0; begin + batch <= normalized.length;
         begin += batch) {
      std::vector<float> rows(static_cast<std::size_t>(batch * num_features_));
      for (std::int64_t b = 0; b < batch; ++b) {
        const std::int64_t t = order[static_cast<std::size_t>(begin + b)];
        for (std::int64_t d = 0; d < num_features_; ++d) {
          rows[static_cast<std::size_t>(b * num_features_ + d)] =
              normalized.at(t, d);
        }
      }
      Tensor x = Tensor::FromData({batch, num_features_}, rows);
      Tensor loss = ops::MseLoss(net_->Decode(net_->Encode(x)), x);
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }

  // Fit the mixture on the codes of all training rows.
  {
    NoGradGuard no_grad;
    const std::int64_t code_dim = options_.latent + 2;
    std::vector<float> codes(
        static_cast<std::size_t>(normalized.length * code_dim));
    for (std::int64_t t = 0; t < normalized.length; ++t) {
      const std::vector<float> code =
          CodeFor(normalized.values.data() + t * num_features_);
      std::copy(code.begin(), code.end(),
                codes.begin() + static_cast<std::ptrdiff_t>(t * code_dim));
    }
    mixture_.Fit(codes, normalized.length, code_dim,
                 options_.mixture_components, options_.em_iterations, &rng_);
  }
  fitted_ = true;
}

std::vector<float> DagmmDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  NoGradGuard no_grad;
  std::vector<float> scores(static_cast<std::size_t>(series.length));
  for (std::int64_t t = 0; t < normalized.length; ++t) {
    const std::vector<float> code =
        CodeFor(normalized.values.data() + t * num_features_);
    scores[static_cast<std::size_t>(t)] =
        static_cast<float>(mixture_.Energy(code.data()));
  }
  return scores;
}

}  // namespace tfmae::baselines
