#include "baselines/iforest.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace tfmae::baselines {
namespace {

constexpr double kEulerMascheroni = 0.5772156649;

}  // namespace

IsolationForestDetector::IsolationForestDetector(std::int64_t num_trees,
                                                 std::int64_t subsample_size,
                                                 std::uint64_t seed)
    : num_trees_(num_trees), subsample_size_(subsample_size), seed_(seed) {
  TFMAE_CHECK(num_trees >= 1 && subsample_size >= 2);
}

double IsolationForestDetector::AveragePathLength(std::int64_t n) {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const double h = std::log(static_cast<double>(n - 1)) + kEulerMascheroni;
  return 2.0 * h -
         2.0 * static_cast<double>(n - 1) / static_cast<double>(n);
}

void IsolationForestDetector::Fit(const data::TimeSeries& train) {
  num_features_ = train.num_features;
  const std::int64_t sample =
      std::min<std::int64_t>(subsample_size_, train.length);
  normalization_ = AveragePathLength(sample);
  const std::int64_t height_limit = static_cast<std::int64_t>(
      std::ceil(std::log2(std::max<std::int64_t>(sample, 2))));

  Rng rng(seed_);
  trees_.clear();
  trees_.reserve(static_cast<std::size_t>(num_trees_));
  for (std::int64_t tree_index = 0; tree_index < num_trees_; ++tree_index) {
    Tree tree;
    const auto picks = rng.SampleWithoutReplacement(train.length, sample);

    // Recursive construction with an explicit stack of (point-set, depth).
    struct Frame {
      std::vector<std::int64_t> points;
      std::int64_t depth;
      std::int32_t node_index;
    };
    tree.nodes.push_back(Node{});
    std::vector<Frame> stack;
    stack.push_back({picks, 0, 0});
    while (!stack.empty()) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      Node& node = tree.nodes[static_cast<std::size_t>(frame.node_index)];
      if (frame.depth >= height_limit ||
          static_cast<std::int64_t>(frame.points.size()) <= 1) {
        node.size = static_cast<std::int64_t>(frame.points.size());
        continue;
      }
      // Pick a random feature with a non-degenerate range.
      std::int64_t feature = -1;
      float lo = 0.0f;
      float hi = 0.0f;
      for (int attempt = 0; attempt < 8 && feature < 0; ++attempt) {
        const std::int64_t candidate = static_cast<std::int64_t>(
            rng.UniformInt(static_cast<std::uint64_t>(num_features_)));
        float min_v = train.at(frame.points[0], candidate);
        float max_v = min_v;
        for (std::int64_t p : frame.points) {
          min_v = std::min(min_v, train.at(p, candidate));
          max_v = std::max(max_v, train.at(p, candidate));
        }
        if (max_v > min_v) {
          feature = candidate;
          lo = min_v;
          hi = max_v;
        }
      }
      if (feature < 0) {  // all candidate features constant: make a leaf
        node.size = static_cast<std::int64_t>(frame.points.size());
        continue;
      }
      const float threshold =
          static_cast<float>(rng.Uniform(lo, hi));
      std::vector<std::int64_t> left_points;
      std::vector<std::int64_t> right_points;
      for (std::int64_t p : frame.points) {
        (train.at(p, feature) < threshold ? left_points : right_points)
            .push_back(p);
      }
      if (left_points.empty() || right_points.empty()) {
        node.size = static_cast<std::int64_t>(frame.points.size());
        continue;
      }
      // push_back may reallocate: write the split through a fresh reference
      // after both children exist.
      const std::int32_t left_index =
          static_cast<std::int32_t>(tree.nodes.size());
      tree.nodes.push_back(Node{});
      const std::int32_t right_index =
          static_cast<std::int32_t>(tree.nodes.size());
      tree.nodes.push_back(Node{});
      Node& split = tree.nodes[static_cast<std::size_t>(frame.node_index)];
      split.feature = feature;
      split.threshold = threshold;
      split.left = left_index;
      split.right = right_index;
      stack.push_back({std::move(left_points), frame.depth + 1, left_index});
      stack.push_back({std::move(right_points), frame.depth + 1, right_index});
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double IsolationForestDetector::PathLength(const Tree& tree,
                                           const float* point) const {
  std::int32_t index = 0;
  std::int64_t depth = 0;
  for (;;) {
    const Node& node = tree.nodes[static_cast<std::size_t>(index)];
    if (node.feature < 0) {
      return static_cast<double>(depth) + AveragePathLength(node.size);
    }
    index = point[node.feature] < node.threshold ? node.left : node.right;
    ++depth;
  }
}

std::vector<float> IsolationForestDetector::Score(
    const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  TFMAE_CHECK(series.num_features == num_features_);
  std::vector<float> scores(static_cast<std::size_t>(series.length));
  for (std::int64_t t = 0; t < series.length; ++t) {
    const float* point = series.values.data() + t * num_features_;
    double mean_path = 0.0;
    for (const Tree& tree : trees_) mean_path += PathLength(tree, point);
    mean_path /= static_cast<double>(trees_.size());
    scores[static_cast<std::size_t>(t)] = static_cast<float>(
        std::pow(2.0, -mean_path / std::max(normalization_, 1e-12)));
  }
  return scores;
}

}  // namespace tfmae::baselines
