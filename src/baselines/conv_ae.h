// Convolutional window autoencoder — the TimesNet stand-in (DESIGN.md §3):
// a temporal-convolution reconstruction model whose inductive bias is local
// pattern matching, like TimesNet's 2D-convolution backbone. Scores are
// per-point reconstruction errors.
#ifndef TFMAE_BASELINES_CONV_AE_H_
#define TFMAE_BASELINES_CONV_AE_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters of the convolutional reconstruction baseline.
struct ConvAeOptions {
  std::int64_t window = 50;
  std::int64_t stride = 25;
  std::int64_t channels = 32;   ///< hidden conv channels
  std::int64_t kernel = 5;      ///< odd conv kernel size
  int epochs = 30;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 13;
};

/// Two conv1d layers down to a bottleneck, two conv1d layers back.
class ConvAeDetector : public core::AnomalyDetector {
 public:
  explicit ConvAeDetector(ConvAeOptions options = {},
                          std::string name = "ConvAE");
  ~ConvAeDetector() override;

  std::string Name() const override { return name_; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  std::string name_;
  ConvAeOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_CONV_AE_H_
