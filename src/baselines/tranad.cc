#include "baselines/tranad.h"

#include "baselines/common.h"
#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {

/// Input projection -> positional encoding -> Transformer encoder; two
/// linear reconstruction heads.
class TranAdDetector::Net : public nn::Module {
 public:
  Net(std::int64_t num_features, const TranAdOptions& options, Rng* rng)
      : proj_(num_features, options.model_dim, rng),
        encoder_(options.num_layers, options.model_dim, options.num_heads,
                 options.ff_hidden, rng),
        head1_(options.model_dim, num_features, rng),
        head2_(options.model_dim, num_features, rng) {
    RegisterModule("proj", &proj_);
    RegisterModule("encoder", &encoder_);
    RegisterModule("head1", &head1_);
    RegisterModule("head2", &head2_);
  }

  /// Shared temporal representation of a window [T, N] -> [T, D].
  Tensor Represent(const Tensor& x) const {
    Tensor h = proj_.Forward(x);
    std::vector<std::int64_t> positions(static_cast<std::size_t>(x.dim(0)));
    for (std::size_t i = 0; i < positions.size(); ++i) {
      positions[i] = static_cast<std::int64_t>(i);
    }
    h = nn::AddPositionalEncoding(h, positions);
    return encoder_.Forward(h);
  }

  Tensor Head1(const Tensor& h) const { return head1_.Forward(h); }
  Tensor Head2(const Tensor& h) const { return head2_.Forward(h); }

 private:
  nn::Linear proj_;
  nn::TransformerStack encoder_;
  nn::Linear head1_;
  nn::Linear head2_;
};

TranAdDetector::~TranAdDetector() = default;

TranAdDetector::TranAdDetector(TranAdOptions options)
    : options_(options), rng_(options.seed) {}

void TranAdDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  const std::int64_t window = std::min(options_.window, normalized.length);

  net_ = std::make_unique<Net>(normalized.num_features, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, window, options_.stride);
  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    const float inv_n = 1.0f / static_cast<float>(epoch + 1);
    for (std::size_t index : order) {
      Tensor x = Tensor::FromData(
          {window, normalized.num_features},
          ExtractWindow(normalized, starts[index], window));
      Tensor h = net_->Represent(x);
      Tensor rec1 = net_->Head1(h);
      Tensor rec2 = net_->Head2(h);
      // Adversarial pass: head 2 reconstructs head 1's output (detached).
      Tensor h_adv = net_->Represent(rec1.Detach());
      Tensor rec2_adv = net_->Head2(h_adv);

      Tensor loss = ops::Add(
          ops::Add(ops::Scale(ops::MseLoss(rec1, x), inv_n),
                   ops::Scale(ops::MseLoss(rec2_adv, x), 1.0f - inv_n)),
          ops::Scale(ops::MseLoss(rec2, x), inv_n));
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<float> TranAdDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t n_feat = normalized.num_features;

  NoGradGuard no_grad;
  ScoreAccumulator accumulator(series.length);
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    const std::vector<float> values = ExtractWindow(normalized, start, window);
    Tensor x = Tensor::FromData({window, n_feat}, values);
    Tensor h = net_->Represent(x);
    Tensor rec1 = net_->Head1(h);
    Tensor rec2 = net_->Head2(net_->Represent(rec1));
    const float* r1 = rec1.data();
    const float* r2 = rec2.data();
    std::vector<float> window_scores(static_cast<std::size_t>(window), 0.0f);
    for (std::int64_t t = 0; t < window; ++t) {
      double err = 0.0;
      for (std::int64_t n = 0; n < n_feat; ++n) {
        const std::int64_t flat = t * n_feat + n;
        const double xv = values[static_cast<std::size_t>(flat)];
        const double d1 = xv - static_cast<double>(r1[flat]);
        const double d2 = xv - static_cast<double>(r2[flat]);
        err += options_.alpha * d1 * d1 + options_.beta * d2 * d2;
      }
      window_scores[static_cast<std::size_t>(t)] =
          static_cast<float>(err / static_cast<double>(n_feat));
    }
    accumulator.Add(start, window_scores);
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
