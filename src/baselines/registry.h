// Factory for the baseline roster used by the Table III comparison bench.
#ifndef TFMAE_BASELINES_REGISTRY_H_
#define TFMAE_BASELINES_REGISTRY_H_

#include <memory>
#include <vector>

#include "core/anomaly_detector.h"

namespace tfmae::baselines {

/// Fresh instances of every implemented baseline, in the family order of the
/// paper's Table III (density, tree, clustering, reconstruction, adversarial
/// reconstruction, contrastive).
std::vector<std::unique_ptr<core::AnomalyDetector>> MakeAllBaselines();

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_REGISTRY_H_
