#include "baselines/dcdetector.h"

#include "baselines/common.h"
#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {

/// Point branch: per-time-step projection + Transformer.
/// Patch branch: mean-pooled patches, projected, Transformer, then
/// broadcast back to point resolution.
class DcDetector::Net : public nn::Module {
 public:
  Net(std::int64_t num_features, const DcDetectorOptions& options, Rng* rng)
      : patch_(options.patch),
        point_proj_(num_features, options.model_dim, rng),
        patch_proj_(num_features, options.model_dim, rng),
        point_branch_(options.num_layers, options.model_dim, options.num_heads,
                      options.ff_hidden, rng),
        patch_branch_(options.num_layers, options.model_dim, options.num_heads,
                      options.ff_hidden, rng) {
    RegisterModule("point_proj", &point_proj_);
    RegisterModule("patch_proj", &patch_proj_);
    RegisterModule("point_branch", &point_branch_);
    RegisterModule("patch_branch", &patch_branch_);
  }

  struct Views {
    Tensor point;  // [T, D]
    Tensor patch;  // [T, D] (patch representations repeated to points)
  };

  Views Forward(const Tensor& x) const {
    const std::int64_t t_len = x.dim(0);
    std::vector<std::int64_t> positions(static_cast<std::size_t>(t_len));
    for (std::size_t i = 0; i < positions.size(); ++i) {
      positions[i] = static_cast<std::int64_t>(i);
    }

    Views views;
    {
      Tensor h = point_proj_.Forward(x);
      h = nn::AddPositionalEncoding(h, positions);
      views.point = point_branch_.Forward(h);
    }
    {
      // Patch means: rows p cover [p*patch, (p+1)*patch).
      const std::int64_t num_patches = (t_len + patch_ - 1) / patch_;
      const std::int64_t n_feat = x.dim(1);
      std::vector<float> pooled(
          static_cast<std::size_t>(num_patches * n_feat), 0.0f);
      for (std::int64_t p = 0; p < num_patches; ++p) {
        const std::int64_t begin = p * patch_;
        const std::int64_t end = std::min(begin + patch_, t_len);
        for (std::int64_t t = begin; t < end; ++t) {
          for (std::int64_t n = 0; n < n_feat; ++n) {
            pooled[static_cast<std::size_t>(p * n_feat + n)] +=
                x.data()[t * n_feat + n];
          }
        }
        for (std::int64_t n = 0; n < n_feat; ++n) {
          pooled[static_cast<std::size_t>(p * n_feat + n)] /=
              static_cast<float>(end - begin);
        }
      }
      Tensor patches = Tensor::FromData({num_patches, n_feat}, pooled);
      Tensor h = patch_proj_.Forward(patches);
      std::vector<std::int64_t> patch_positions(
          static_cast<std::size_t>(num_patches));
      for (std::size_t i = 0; i < patch_positions.size(); ++i) {
        patch_positions[i] = static_cast<std::int64_t>(i) * patch_;
      }
      h = nn::AddPositionalEncoding(h, patch_positions);
      h = patch_branch_.Forward(h);
      // Repeat each patch representation across its points.
      std::vector<std::int64_t> gather(static_cast<std::size_t>(t_len));
      for (std::int64_t t = 0; t < t_len; ++t) {
        gather[static_cast<std::size_t>(t)] = t / patch_;
      }
      views.patch = ops::IndexRows(h, gather);
    }
    return views;
  }

 private:
  std::int64_t patch_;
  nn::Linear point_proj_;
  nn::Linear patch_proj_;
  nn::TransformerStack point_branch_;
  nn::TransformerStack patch_branch_;
};

DcDetector::~DcDetector() = default;

DcDetector::DcDetector(DcDetectorOptions options)
    : options_(options), rng_(options.seed) {}

void DcDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  const std::int64_t window = std::min(options_.window, normalized.length);

  net_ = std::make_unique<Net>(normalized.num_features, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, window, options_.stride);
  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (std::size_t index : order) {
      Tensor x = Tensor::FromData(
          {window, normalized.num_features},
          ExtractWindow(normalized, starts[index], window));
      const Net::Views views = net_->Forward(x);
      // DCdetector's pure positive-pair objective: each branch chases the
      // stop-gradient of the other.
      Tensor loss =
          ops::Add(ops::SymmetricKlLoss(views.point.Detach(), views.patch),
                   ops::SymmetricKlLoss(views.patch.Detach(), views.point));
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<float> DcDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);

  NoGradGuard no_grad;
  ScoreAccumulator accumulator(series.length);
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    Tensor x =
        Tensor::FromData({window, normalized.num_features},
                         ExtractWindow(normalized, start, window));
    const Net::Views views = net_->Forward(x);
    accumulator.Add(start,
                    ops::SymmetricKlPerRow(views.point, views.patch));
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
