// TranAD-lite (Tuli et al., VLDB 2022) — Transformer-based adversarial
// reconstruction: a Transformer encoder with two reconstruction heads
// trained USAD-style (head 2 adversarially reconstructs head 1's output).
// Simplification vs. the original: the two-phase self-conditioning input
// (anomaly focus score) is omitted; the defining mechanisms — Transformer
// temporal encoding + adversarial dual decoders — are preserved.
#ifndef TFMAE_BASELINES_TRANAD_H_
#define TFMAE_BASELINES_TRANAD_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/transformer.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters of TranAD-lite.
struct TranAdOptions {
  std::int64_t window = 50;
  std::int64_t stride = 25;
  std::int64_t model_dim = 32;
  std::int64_t num_heads = 4;
  std::int64_t num_layers = 2;
  std::int64_t ff_hidden = 64;
  int epochs = 30;
  float learning_rate = 1e-3f;
  float alpha = 0.5f;  ///< score weight of head-1 error
  float beta = 0.5f;   ///< score weight of the adversarial head error
  std::uint64_t seed = 41;
};

/// TranAD-lite detector.
class TranAdDetector : public core::AnomalyDetector {
 public:
  explicit TranAdDetector(TranAdOptions options = {});
  ~TranAdDetector() override;

  std::string Name() const override { return "TranAD"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  TranAdOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_TRANAD_H_
