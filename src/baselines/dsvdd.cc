#include "baselines/dsvdd.h"

#include <cmath>

#include "baselines/common.h"
#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {

/// Bias-free MLP encoder (bias-free, as required by Deep SVDD to exclude the
/// trivial constant-map solution).
class DsvddDetector::Net : public nn::Module {
 public:
  Net(std::int64_t input_dim, const DsvddOptions& options, Rng* rng)
      : fc1_(input_dim, options.hidden, rng, /*with_bias=*/false),
        fc2_(options.hidden, options.latent, rng, /*with_bias=*/false) {
    RegisterModule("fc1", &fc1_);
    RegisterModule("fc2", &fc2_);
  }

  Tensor Encode(const Tensor& x) const {
    return fc2_.Forward(ops::Relu(fc1_.Forward(x)));
  }

 private:
  nn::Linear fc1_;
  nn::Linear fc2_;
};

DsvddDetector::~DsvddDetector() = default;

DsvddDetector::DsvddDetector(DsvddOptions options)
    : options_(options), rng_(options.seed) {}

void DsvddDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t input_dim = window * normalized.num_features;

  net_ = std::make_unique<Net>(input_dim, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, window, options_.stride);

  // Center c = mean of initial embeddings (the standard DSVDD protocol).
  center_.assign(static_cast<std::size_t>(options_.latent), 0.0f);
  {
    NoGradGuard no_grad;
    for (std::int64_t start : starts) {
      Tensor x = Tensor::FromData(
          {1, input_dim}, ExtractWindow(normalized, start, window));
      Tensor z = net_->Encode(x);
      for (std::int64_t i = 0; i < options_.latent; ++i) {
        center_[static_cast<std::size_t>(i)] += z.data()[i];
      }
    }
    for (float& c : center_) c /= static_cast<float>(starts.size());
    // Nudge coordinates away from zero (standard DSVDD trick to avoid a
    // trivially reachable center).
    for (float& c : center_) {
      if (std::abs(c) < 0.1f) c = c >= 0 ? 0.1f : -0.1f;
    }
  }
  Tensor center_tensor =
      Tensor::FromData({1, options_.latent}, center_);

  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (std::size_t index : order) {
      Tensor x = Tensor::FromData(
          {1, input_dim}, ExtractWindow(normalized, starts[index], window));
      Tensor z = net_->Encode(x);
      Tensor loss = ops::MeanAll(ops::Square(ops::Sub(z, center_tensor)));
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<float> DsvddDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t input_dim = window * normalized.num_features;

  NoGradGuard no_grad;
  ScoreAccumulator accumulator(series.length);
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    Tensor x = Tensor::FromData({1, input_dim},
                                ExtractWindow(normalized, start, window));
    Tensor z = net_->Encode(x);
    double dist = 0.0;
    for (std::int64_t i = 0; i < options_.latent; ++i) {
      const double d = static_cast<double>(z.data()[i]) -
                       static_cast<double>(center_[static_cast<std::size_t>(i)]);
      dist += d * d;
    }
    accumulator.AddUniform(start, window, static_cast<float>(dist));
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
