#include "baselines/registry.h"

#include "baselines/anotran.h"
#include "baselines/conv_ae.h"
#include "baselines/dagmm.h"
#include "baselines/dcdetector.h"
#include "baselines/dense_ae.h"
#include "baselines/dsvdd.h"
#include "baselines/iforest.h"
#include "baselines/lof.h"
#include "baselines/omni_ano.h"
#include "baselines/spectral_residual.h"
#include "baselines/thoc.h"
#include "baselines/tranad.h"
#include "baselines/usad.h"

namespace tfmae::baselines {

std::vector<std::unique_ptr<core::AnomalyDetector>> MakeAllBaselines() {
  std::vector<std::unique_ptr<core::AnomalyDetector>> detectors;
  detectors.push_back(std::make_unique<LofDetector>());
  detectors.push_back(std::make_unique<IsolationForestDetector>());
  detectors.push_back(std::make_unique<DsvddDetector>());
  detectors.push_back(std::make_unique<ThocDetector>());
  detectors.push_back(std::make_unique<DagmmDetector>());
  detectors.push_back(std::make_unique<SpectralResidualDetector>());
  detectors.push_back(std::make_unique<OmniAnoDetector>());
  detectors.push_back(std::make_unique<DenseAeDetector>());
  detectors.push_back(std::make_unique<ConvAeDetector>());
  detectors.push_back(std::make_unique<UsadDetector>());
  detectors.push_back(std::make_unique<TranAdDetector>());
  detectors.push_back(std::make_unique<AnoTranDetector>());
  detectors.push_back(std::make_unique<DcDetector>());
  return detectors;
}

}  // namespace tfmae::baselines
