#include "baselines/omni_ano.h"

#include "baselines/common.h"
#include "data/timeseries.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::baselines {

/// GRU encoder -> per-step Gaussian posterior -> MLP decoder.
class OmniAnoDetector::Net : public nn::Module {
 public:
  Net(std::int64_t num_features, const OmniAnoOptions& options, Rng* rng)
      : encoder_(num_features, options.hidden, rng),
        mu_head_(options.hidden, options.latent, rng),
        logvar_head_(options.hidden, options.latent, rng),
        dec1_(options.latent, options.hidden, rng),
        dec2_(options.hidden, num_features, rng) {
    RegisterModule("encoder", &encoder_);
    RegisterModule("mu", &mu_head_);
    RegisterModule("logvar", &logvar_head_);
    RegisterModule("dec1", &dec1_);
    RegisterModule("dec2", &dec2_);
  }

  struct Posterior {
    Tensor mu;      // [T, Z]
    Tensor logvar;  // [T, Z]
  };

  Posterior Encode(const Tensor& x) const {
    Tensor states = encoder_.Forward(x);
    Posterior posterior;
    posterior.mu = mu_head_.Forward(states);
    posterior.logvar = logvar_head_.Forward(states);
    return posterior;
  }

  Tensor Decode(const Tensor& z) const {
    return dec2_.Forward(ops::Tanh(dec1_.Forward(z)));
  }

  /// Reparameterized sample z = mu + eps * exp(logvar / 2).
  Tensor Sample(const Posterior& posterior, Rng* rng) const {
    Tensor eps = Tensor::Randn(posterior.mu.shape(), rng);
    Tensor std_dev = ops::Exp(ops::Scale(posterior.logvar, 0.5f));
    return ops::Add(posterior.mu, ops::Mul(eps, std_dev));
  }

  /// KL(q || N(0, I)) averaged over steps and dimensions.
  Tensor KlToStandardNormal(const Posterior& posterior) const {
    // -1/2 * mean(1 + logvar - mu^2 - exp(logvar)).
    Tensor inner = ops::Sub(
        ops::Sub(ops::AddScalar(posterior.logvar, 1.0f),
                 ops::Square(posterior.mu)),
        ops::Exp(posterior.logvar));
    return ops::Scale(ops::MeanAll(inner), -0.5f);
  }

 private:
  nn::GruLayer encoder_;
  nn::Linear mu_head_;
  nn::Linear logvar_head_;
  nn::Linear dec1_;
  nn::Linear dec2_;
};

OmniAnoDetector::~OmniAnoDetector() = default;

OmniAnoDetector::OmniAnoDetector(OmniAnoOptions options)
    : options_(options), rng_(options.seed) {}

void OmniAnoDetector::Fit(const data::TimeSeries& train) {
  normalizer_.Fit(train);
  const data::TimeSeries normalized = normalizer_.Apply(train);
  const std::int64_t window = std::min(options_.window, normalized.length);

  net_ = std::make_unique<Net>(normalized.num_features, options_, &rng_);
  nn::AdamOptions adam;
  adam.learning_rate = options_.learning_rate;
  adam.clip_grad_norm = 5.0f;
  optimizer_ = std::make_unique<nn::Adam>(net_->Parameters(), adam);

  const auto starts =
      data::WindowStarts(normalized.length, window, options_.stride);
  std::vector<std::size_t> order(starts.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (std::size_t index : order) {
      Tensor x = Tensor::FromData(
          {window, normalized.num_features},
          ExtractWindow(normalized, starts[index], window));
      const Net::Posterior posterior = net_->Encode(x);
      Tensor reconstruction = net_->Decode(net_->Sample(posterior, &rng_));
      Tensor loss = ops::Add(
          ops::MseLoss(reconstruction, x),
          ops::Scale(net_->KlToStandardNormal(posterior), options_.kl_weight));
      net_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<float> OmniAnoDetector::Score(const data::TimeSeries& series) {
  TFMAE_CHECK_MSG(fitted_, "Score() called before Fit()");
  const data::TimeSeries normalized = normalizer_.Apply(series);
  const std::int64_t window = std::min(options_.window, normalized.length);
  const std::int64_t n_feat = normalized.num_features;

  NoGradGuard no_grad;
  ScoreAccumulator accumulator(series.length);
  for (std::int64_t start :
       data::WindowStarts(normalized.length, window, options_.stride)) {
    const std::vector<float> values = ExtractWindow(normalized, start, window);
    Tensor x = Tensor::FromData({window, n_feat}, values);
    // Deterministic scoring: decode the posterior mean.
    Tensor reconstruction = net_->Decode(net_->Encode(x).mu);
    const float* rec = reconstruction.data();
    std::vector<float> window_scores(static_cast<std::size_t>(window), 0.0f);
    for (std::int64_t t = 0; t < window; ++t) {
      double err = 0.0;
      for (std::int64_t n = 0; n < n_feat; ++n) {
        const double d = static_cast<double>(values[static_cast<std::size_t>(
                             t * n_feat + n)]) -
                         static_cast<double>(rec[t * n_feat + n]);
        err += d * d;
      }
      window_scores[static_cast<std::size_t>(t)] =
          static_cast<float>(err / static_cast<double>(n_feat));
    }
    accumulator.Add(start, window_scores);
  }
  return accumulator.Finalize();
}

}  // namespace tfmae::baselines
