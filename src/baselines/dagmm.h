// DAGMM (Zong et al., ICLR 2018) — the deep density-family baseline: an
// autoencoder produces a low-dimensional code augmented with reconstruction
// features; a Gaussian mixture is fitted to the codes; the anomaly score is
// the sample energy (negative log-likelihood) under the mixture.
//
// Simplification vs. the original: the GMM is fitted by classic EM on the
// trained codes instead of the estimation-network joint training — the
// density mechanism (energy under a learned mixture in the latent space) is
// preserved, which is what the family comparison tests.
#ifndef TFMAE_BASELINES_DAGMM_H_
#define TFMAE_BASELINES_DAGMM_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters of DAGMM.
struct DagmmOptions {
  std::int64_t hidden = 32;
  std::int64_t latent = 4;
  int mixture_components = 4;
  int epochs = 30;
  int em_iterations = 30;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 31;
};

/// Diagonal-covariance Gaussian mixture fitted with EM.
class GaussianMixture {
 public:
  /// Fits `components` diagonal Gaussians to row-major points [n, dim].
  void Fit(const std::vector<float>& points, std::int64_t n, std::int64_t dim,
           int components, int iterations, Rng* rng);

  /// Sample energy: -log sum_k pi_k N(x | mu_k, Sigma_k).
  double Energy(const float* point) const;

  std::int64_t dim() const { return dim_; }
  int components() const { return static_cast<int>(weights_.size()); }

 private:
  std::int64_t dim_ = 0;
  std::vector<double> weights_;    // [K]
  std::vector<double> means_;      // [K, dim]
  std::vector<double> variances_;  // [K, dim]
};

/// DAGMM detector over per-time-step observation vectors.
class DagmmDetector : public core::AnomalyDetector {
 public:
  explicit DagmmDetector(DagmmOptions options = {});
  ~DagmmDetector() override;

  std::string Name() const override { return "DAGMM"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  /// Latent code + [relative euclidean error, cosine similarity] features.
  std::vector<float> CodeFor(const float* point) const;

  DagmmOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  GaussianMixture mixture_;
  data::ZScoreNormalizer normalizer_;
  std::int64_t num_features_ = 0;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_DAGMM_H_
