// Local Outlier Factor (Breunig et al., SIGMOD 2000) — the classical
// density-based baseline of Table III.
//
// Inductive variant: reachability statistics are computed on the training
// observations; each scored point's LOF compares its local reachability
// density against the densities of its k nearest training neighbors.
#ifndef TFMAE_BASELINES_LOF_H_
#define TFMAE_BASELINES_LOF_H_

#include <cstdint>
#include <vector>

#include "core/anomaly_detector.h"
#include "data/timeseries.h"

namespace tfmae::baselines {

/// LOF detector over per-time-step observation vectors.
class LofDetector : public core::AnomalyDetector {
 public:
  /// `num_neighbors` is the classical k (default 20).
  /// `max_train_points` subsamples training data to bound the O(n^2) fit.
  explicit LofDetector(std::int64_t num_neighbors = 20,
                       std::int64_t max_train_points = 2000);

  std::string Name() const override { return "LOF"; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  /// k-NN of `point` among the training points: indices and distances,
  /// sorted ascending by distance. `skip` excludes one training index
  /// (used when scoring training points against themselves).
  void KnnOfPoint(const float* point, std::int64_t skip,
                  std::vector<std::int64_t>* indices,
                  std::vector<double>* distances) const;

  std::int64_t num_neighbors_;
  std::int64_t max_train_points_;
  std::int64_t num_features_ = 0;
  std::vector<float> train_points_;        // [n, num_features_]
  std::int64_t num_train_ = 0;
  std::vector<double> train_kdist_;        // k-distance of each train point
  std::vector<double> train_lrd_;          // local reachability density
  data::ZScoreNormalizer normalizer_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_LOF_H_
