// Shared plumbing for baseline detectors: window extraction and per-point
// score accumulation over (possibly overlapping) windows.
#ifndef TFMAE_BASELINES_COMMON_H_
#define TFMAE_BASELINES_COMMON_H_

#include <cstdint>
#include <vector>

#include "data/timeseries.h"

namespace tfmae::baselines {

/// Flat copy of rows [start, start+len) of `series` ([len * N] row-major).
std::vector<float> ExtractWindow(const data::TimeSeries& series,
                                 std::int64_t start, std::int64_t len);

/// Accumulates per-point scores from overlapping windows and averages.
class ScoreAccumulator {
 public:
  explicit ScoreAccumulator(std::int64_t length);

  /// Adds window scores (size len) starting at `start`.
  void Add(std::int64_t start, const std::vector<float>& window_scores);

  /// Adds a single score for every point of [start, start+len) (for
  /// detectors that score whole windows).
  void AddUniform(std::int64_t start, std::int64_t len, float score);

  /// Mean score per point (0 where never covered).
  std::vector<float> Finalize() const;

 private:
  std::vector<double> sum_;
  std::vector<std::int32_t> count_;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_COMMON_H_
