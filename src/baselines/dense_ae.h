// Dense window autoencoder — the plain reconstruction-family baseline
// (stands in for the OmniAnomaly family: reconstruct the window, score by
// per-point reconstruction error; see DESIGN.md §3).
#ifndef TFMAE_BASELINES_DENSE_AE_H_
#define TFMAE_BASELINES_DENSE_AE_H_

#include <memory>

#include "core/anomaly_detector.h"
#include "nn/adam.h"
#include "nn/layers.h"
#include "util/rng.h"

namespace tfmae::baselines {

/// Hyper-parameters shared by the dense reconstruction baselines.
struct DenseAeOptions {
  std::int64_t window = 50;
  std::int64_t stride = 25;
  std::int64_t hidden = 64;
  std::int64_t latent = 16;
  int epochs = 30;
  float learning_rate = 1e-3f;
  std::uint64_t seed = 11;
};

/// MLP autoencoder over flattened windows; anomaly score is the per-point
/// squared reconstruction error averaged over features and covering windows.
class DenseAeDetector : public core::AnomalyDetector {
 public:
  explicit DenseAeDetector(DenseAeOptions options = {},
                           std::string name = "DenseAE");
  ~DenseAeDetector() override;

  std::string Name() const override { return name_; }
  void Fit(const data::TimeSeries& train) override;
  std::vector<float> Score(const data::TimeSeries& series) override;

 private:
  class Net;
  std::string name_;
  DenseAeOptions options_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<nn::Adam> optimizer_;
  data::ZScoreNormalizer normalizer_;
  Rng rng_;
  bool fitted_ = false;
};

}  // namespace tfmae::baselines

#endif  // TFMAE_BASELINES_DENSE_AE_H_
