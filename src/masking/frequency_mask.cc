#include "masking/frequency_mask.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fft/fft.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tfmae::masking {

FrequencyMaskedColumn MaskFrequencyColumn(const std::vector<float>& column,
                                          double ratio,
                                          FrequencyMaskVariant variant,
                                          Rng* rng) {
  TFMAE_TRACE("masking.frequency");
  TFMAE_CHECK_MSG(ratio >= 0.0 && ratio < 1.0,
                  "frequency mask ratio must be in [0, 1), got " << ratio);
  const std::int64_t length = static_cast<std::int64_t>(column.size());
  TFMAE_CHECK(length >= 1);

  std::vector<double> column_d(column.begin(), column.end());
  std::vector<fft::Complex> spectrum = fft::RealFft(column_d);

  const std::int64_t masked_count =
      variant == FrequencyMaskVariant::kNone
          ? 0
          : static_cast<std::int64_t>(ratio * static_cast<double>(length));

  std::vector<std::int64_t> masked;
  switch (variant) {
    case FrequencyMaskVariant::kNone:
      break;
    case FrequencyMaskVariant::kAmplitude: {
      // Eq. (8): TopIndex(-amplitude) == lowest-amplitude bins.
      const std::vector<double> amplitude = fft::Amplitude(spectrum);
      std::vector<std::int64_t> idx(static_cast<std::size_t>(length));
      std::iota(idx.begin(), idx.end(), 0);
      std::partial_sort(idx.begin(), idx.begin() + masked_count, idx.end(),
                        [&amplitude](std::int64_t a, std::int64_t b) {
                          const double va =
                              amplitude[static_cast<std::size_t>(a)];
                          const double vb =
                              amplitude[static_cast<std::size_t>(b)];
                          if (va != vb) return va < vb;
                          return a < b;
                        });
      idx.resize(static_cast<std::size_t>(masked_count));
      masked = std::move(idx);
      break;
    }
    case FrequencyMaskVariant::kHighFrequency: {
      // "High frequency" of full-spectrum bin i is min(i, length - i):
      // bins near the Nyquist rate are masked first.
      std::vector<std::int64_t> idx(static_cast<std::size_t>(length));
      std::iota(idx.begin(), idx.end(), 0);
      auto freq_of = [length](std::int64_t i) {
        return std::min<std::int64_t>(i, length - i);
      };
      std::partial_sort(idx.begin(), idx.begin() + masked_count, idx.end(),
                        [&freq_of](std::int64_t a, std::int64_t b) {
                          const std::int64_t fa = freq_of(a);
                          const std::int64_t fb = freq_of(b);
                          if (fa != fb) return fa > fb;
                          return a < b;
                        });
      idx.resize(static_cast<std::size_t>(masked_count));
      masked = std::move(idx);
      break;
    }
    case FrequencyMaskVariant::kRandom: {
      TFMAE_CHECK_MSG(rng != nullptr, "random frequency masking needs an Rng");
      masked = rng->SampleWithoutReplacement(length, masked_count);
      break;
    }
  }
  std::sort(masked.begin(), masked.end());

  // Zero the masked bins and return to the time domain for the base signal.
  for (std::int64_t bin : masked) {
    spectrum[static_cast<std::size_t>(bin)] = fft::Complex(0, 0);
  }
  const std::vector<double> base_d = fft::RealIfft(spectrum);

  FrequencyMaskedColumn result;
  result.base.assign(base_d.begin(), base_d.end());
  result.masked_bins = std::move(masked);
  result.cos_coef.assign(static_cast<std::size_t>(length), 0.0f);
  result.sin_coef.assign(static_cast<std::size_t>(length), 0.0f);
  const double inv_len = 1.0 / static_cast<double>(length);
  for (std::int64_t bin : result.masked_bins) {
    for (std::int64_t t = 0; t < length; ++t) {
      const double angle = 2.0 * M_PI * static_cast<double>(bin) *
                           static_cast<double>(t) * inv_len;
      // Re[(re + j*im) * e^{j angle}] / length = (re*cos - im*sin) / length.
      result.cos_coef[static_cast<std::size_t>(t)] +=
          static_cast<float>(std::cos(angle) * inv_len);
      result.sin_coef[static_cast<std::size_t>(t)] -=
          static_cast<float>(std::sin(angle) * inv_len);
    }
  }
  return result;
}

std::vector<float> AssembleMaskedColumn(const FrequencyMaskedColumn& masked,
                                        float token_re, float token_im) {
  std::vector<float> out(masked.base.size());
  for (std::size_t t = 0; t < out.size(); ++t) {
    out[t] = masked.base[t] + token_re * masked.cos_coef[t] +
             token_im * masked.sin_coef[t];
  }
  return out;
}

}  // namespace tfmae::masking
