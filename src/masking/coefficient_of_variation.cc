#include "masking/coefficient_of_variation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "fft/convolution.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tfmae::masking {
namespace {

// Denominator guard of the dispersion ratio. TFMAE computes the statistic on
// z-normalized inputs, where window means hover around zero; a tiny epsilon
// would let 1/|mean| noise dominate the ranking. One unit — one global
// standard deviation after normalization — keeps the mean-discounting
// behaviour of the CV while bounding the amplification.
constexpr double kMeanEps = 1.0;

// Effective trailing-window length at position t.
inline std::int64_t EffectiveWindow(std::int64_t t, std::int64_t window) {
  return std::min<std::int64_t>(t + 1, window);
}

// Dispersion score of one (sum, sum_sq, w) triple: unbiased variance over
// |mean| (Eq. (1) with the Eq.-(4) typo corrected; see header).
inline double Dispersion(double sum, double sum_sq, std::int64_t w) {
  const double mean = sum / static_cast<double>(w);
  double variance = 0.0;
  if (w > 1) {
    variance = (sum_sq - sum * mean) / static_cast<double>(w - 1);
    variance = std::max(variance, 0.0);
  }
  return variance / (std::abs(mean) + kMeanEps);
}

}  // namespace

std::vector<double> CoefficientOfVariation(const std::vector<float>& series,
                                           std::int64_t length,
                                           std::int64_t num_features,
                                           std::int64_t window,
                                           CvMethod method) {
  TFMAE_TRACE("masking.cv");
  TFMAE_CHECK(window >= 1 && length >= 1 && num_features >= 1);
  TFMAE_CHECK(static_cast<std::int64_t>(series.size()) ==
              length * num_features);
  std::vector<double> scores(static_cast<std::size_t>(length), 0.0);

  if (method == CvMethod::kNaive) {
    // The deliberately un-optimized two-loop form (paper Section IV-A.1).
    for (std::int64_t n = 0; n < num_features; ++n) {
      for (std::int64_t t = 0; t < length; ++t) {
        const std::int64_t w = EffectiveWindow(t, window);
        double sum = 0.0;
        double sum_sq = 0.0;
        for (std::int64_t k = t - w + 1; k <= t; ++k) {
          const double v = series[static_cast<std::size_t>(
              k * num_features + n)];
          sum += v;
          sum_sq += v * v;
        }
        scores[static_cast<std::size_t>(t)] += Dispersion(sum, sum_sq, w);
      }
    }
    return scores;
  }

  // FFT path (Eq. (5)): per feature, one convolution for the moving sum of s
  // and one for the moving sum of s^2.
  std::vector<double> column(static_cast<std::size_t>(length));
  std::vector<double> column_sq(static_cast<std::size_t>(length));
  for (std::int64_t n = 0; n < num_features; ++n) {
    for (std::int64_t t = 0; t < length; ++t) {
      const double v =
          series[static_cast<std::size_t>(t * num_features + n)];
      column[static_cast<std::size_t>(t)] = v;
      column_sq[static_cast<std::size_t>(t)] = v * v;
    }
    const std::vector<double> sum = fft::MovingSumFft(column, window);
    const std::vector<double> sum_sq = fft::MovingSumFft(column_sq, window);
    for (std::int64_t t = 0; t < length; ++t) {
      const std::int64_t w = EffectiveWindow(t, window);
      scores[static_cast<std::size_t>(t)] +=
          Dispersion(sum[static_cast<std::size_t>(t)],
                     sum_sq[static_cast<std::size_t>(t)], w);
    }
  }
  return scores;
}

std::vector<double> SlidingStdDev(const std::vector<float>& series,
                                  std::int64_t length,
                                  std::int64_t num_features,
                                  std::int64_t window) {
  TFMAE_CHECK(window >= 1 && length >= 1 && num_features >= 1);
  TFMAE_CHECK(static_cast<std::int64_t>(series.size()) ==
              length * num_features);
  std::vector<double> scores(static_cast<std::size_t>(length), 0.0);
  for (std::int64_t n = 0; n < num_features; ++n) {
    for (std::int64_t t = 0; t < length; ++t) {
      const std::int64_t w = EffectiveWindow(t, window);
      double sum = 0.0;
      double sum_sq = 0.0;
      for (std::int64_t k = t - w + 1; k <= t; ++k) {
        const double v =
            series[static_cast<std::size_t>(k * num_features + n)];
        sum += v;
        sum_sq += v * v;
      }
      const double mean = sum / static_cast<double>(w);
      double variance = 0.0;
      if (w > 1) {
        variance =
            std::max(0.0, (sum_sq - sum * mean) / static_cast<double>(w - 1));
      }
      scores[static_cast<std::size_t>(t)] += std::sqrt(variance);
    }
  }
  return scores;
}

std::vector<std::int64_t> TopIndex(const std::vector<double>& values,
                                   std::int64_t k) {
  const std::int64_t n = static_cast<std::int64_t>(values.size());
  TFMAE_CHECK_MSG(k >= 0 && k <= n,
                  "TopIndex k=" << k << " out of range for " << n << " values");
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&values](std::int64_t a, std::int64_t b) {
                      const double va = values[static_cast<std::size_t>(a)];
                      const double vb = values[static_cast<std::size_t>(b)];
                      if (va != vb) return va > vb;
                      return a < b;  // deterministic tie-break
                    });
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

}  // namespace tfmae::masking
