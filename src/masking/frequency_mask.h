// Amplitude-based frequency masking (paper Section IV-A.2, Eq. (6)-(10))
// and its Table V ablation variants.
//
// Pipeline per feature column:
//  1. DFT the column (Eq. (6)) and compute per-bin amplitudes (Eq. (7)).
//  2. Select the r% lowest-amplitude bins (Eq. (8)) — short-lived/low-
//     magnitude patterns, which the paper argues are the likely anomalies.
//  3. Replace them with a learnable complex token m^(F) (Eq. (9)) and IDFT
//     back (Eq. (10)).
// Because the IDFT is linear, the masked time-domain series decomposes as
//   masked(t) = base(t) + Re(m) * cos_coef(t) + Im(m) * sin_coef(t)
// where base is the IDFT with masked bins zeroed, and the two coefficient
// vectors collect the masked bins' basis functions. The model keeps Re(m),
// Im(m) as trainable parameters and assembles the series with tensor ops, so
// gradients flow into the mask token exactly as in the paper.
#ifndef TFMAE_MASKING_FREQUENCY_MASK_H_
#define TFMAE_MASKING_FREQUENCY_MASK_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace tfmae::masking {

/// Strategy used to pick which frequency bins to mask.
enum class FrequencyMaskVariant {
  kAmplitude,       ///< TFMAE default: lowest-amplitude bins (Eq. (8)).
  kHighFrequency,   ///< "w/ HMF": highest-frequency bins.
  kRandom,          ///< "w/ RMF": uniform random bins.
  kNone,            ///< "w/o MF": nothing is masked.
};

/// Decomposition of one frequency-masked feature column (see file comment).
struct FrequencyMaskedColumn {
  /// Time-domain series with masked bins zeroed (length = input length).
  std::vector<float> base;
  /// Basis coefficient multiplying Re(m^(F)).
  std::vector<float> cos_coef;
  /// Basis coefficient multiplying Im(m^(F)).
  std::vector<float> sin_coef;
  /// The masked bin indices (full-spectrum indices, sorted ascending).
  std::vector<std::int64_t> masked_bins;
};

/// Masks floor(ratio * length) frequency bins of one column.
/// `rng` is required for kRandom and ignored otherwise.
FrequencyMaskedColumn MaskFrequencyColumn(const std::vector<float>& column,
                                          double ratio,
                                          FrequencyMaskVariant variant,
                                          Rng* rng);

/// Test/inspection helper: evaluates the decomposition for a concrete token
/// value, returning base + re*cos_coef + im*sin_coef.
std::vector<float> AssembleMaskedColumn(const FrequencyMaskedColumn& masked,
                                        float token_re, float token_im);

}  // namespace tfmae::masking

#endif  // TFMAE_MASKING_FREQUENCY_MASK_H_
