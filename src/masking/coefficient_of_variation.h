// Sliding-window coefficient-of-variation statistics (paper Eq. (1)-(5)).
//
// The window-based temporal masking strategy scores each observation by the
// dispersion of its trailing sub-sequence: a large coefficient of variation
// marks a locally fluctuating (likely anomalous) region. Two equivalent
// implementations are provided:
//  * kNaive  — the textbook two-loop form (outer: slide window, inner:
//              accumulate statistics), O(N * |S| * W). This is the "w/o FFT"
//              variant measured in the Fig. 10 efficiency ablation.
//  * kFft    — moving sums of s and s^2 obtained by FFT convolution with a
//              ones kernel (Wiener-Khinchin), O(N * |S| * log|S|), Eq. (5).
//
// Note on Eq. (4): the paper prints mu^(2) + mu^2 in the numerator; the
// variance identity is E[s^2] - E[s]^2, and Eq. (1) computes a variance, so
// we implement the subtraction (the printed '+' is a typo). The denominator
// uses |mu| + eps for numerical robustness on zero-centred (normalized)
// series, preserving the paper's scale-invariance argument.
#ifndef TFMAE_MASKING_COEFFICIENT_OF_VARIATION_H_
#define TFMAE_MASKING_COEFFICIENT_OF_VARIATION_H_

#include <cstdint>
#include <vector>

namespace tfmae::masking {

/// Implementation selector for the CV computation.
enum class CvMethod { kNaive, kFft };

/// Computes v_t (Eq. (1)): per-time-step sum over features of the trailing-
/// window variance-over-mean dispersion score.
///
/// `series` is row-major [length, num_features]. `window` is the sliding
/// window length W (>= 1); positions with fewer than `window` preceding
/// samples use the truncated prefix window. Returns `length` scores.
std::vector<double> CoefficientOfVariation(const std::vector<float>& series,
                                           std::int64_t length,
                                           std::int64_t num_features,
                                           std::int64_t window,
                                           CvMethod method);

/// Per-time-step trailing-window standard deviation summed over features —
/// the "w/ SMT" masking ablation of Table V (std-dev criterion, not scale
/// normalized).
std::vector<double> SlidingStdDev(const std::vector<float>& series,
                                  std::int64_t length,
                                  std::int64_t num_features,
                                  std::int64_t window);

/// Indices of the `k` largest values of `values`, in descending value order
/// (the paper's TopIndex, Eq. (2)).
std::vector<std::int64_t> TopIndex(const std::vector<double>& values,
                                   std::int64_t k);

}  // namespace tfmae::masking

#endif  // TFMAE_MASKING_COEFFICIENT_OF_VARIATION_H_
