#include "masking/temporal_mask.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"

namespace tfmae::masking {

TemporalMask ComputeTemporalMask(const std::vector<float>& series,
                                 std::int64_t length,
                                 std::int64_t num_features,
                                 std::int64_t window, double ratio,
                                 TemporalMaskVariant variant,
                                 CvMethod cv_method, Rng* rng) {
  TFMAE_TRACE("masking.temporal");
  TFMAE_CHECK_MSG(ratio >= 0.0 && ratio < 1.0,
                  "temporal mask ratio must be in [0, 1), got " << ratio);
  const std::int64_t masked_count =
      variant == TemporalMaskVariant::kNone
          ? 0
          : static_cast<std::int64_t>(ratio * static_cast<double>(length));

  std::vector<std::int64_t> masked;
  switch (variant) {
    case TemporalMaskVariant::kNone:
      break;
    case TemporalMaskVariant::kCoefficientOfVariation: {
      const std::vector<double> scores = CoefficientOfVariation(
          series, length, num_features, window, cv_method);
      masked = TopIndex(scores, masked_count);
      break;
    }
    case TemporalMaskVariant::kStdDev: {
      const std::vector<double> scores =
          SlidingStdDev(series, length, num_features, window);
      masked = TopIndex(scores, masked_count);
      break;
    }
    case TemporalMaskVariant::kRandom: {
      TFMAE_CHECK_MSG(rng != nullptr, "random temporal masking needs an Rng");
      masked = rng->SampleWithoutReplacement(length, masked_count);
      break;
    }
  }
  std::sort(masked.begin(), masked.end());

  TemporalMask result;
  result.masked = std::move(masked);
  result.unmasked.reserve(
      static_cast<std::size_t>(length - masked_count));
  std::size_t mi = 0;
  for (std::int64_t t = 0; t < length; ++t) {
    if (mi < result.masked.size() && result.masked[mi] == t) {
      ++mi;
    } else {
      result.unmasked.push_back(t);
    }
  }
  return result;
}

}  // namespace tfmae::masking
