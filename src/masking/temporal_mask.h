// Window-based temporal masking (paper Section IV-A.1) and its Table V
// ablation variants.
#ifndef TFMAE_MASKING_TEMPORAL_MASK_H_
#define TFMAE_MASKING_TEMPORAL_MASK_H_

#include <cstdint>
#include <vector>

#include "masking/coefficient_of_variation.h"
#include "util/rng.h"

namespace tfmae::masking {

/// Strategy used to pick which observations to mask.
enum class TemporalMaskVariant {
  kCoefficientOfVariation,  ///< TFMAE default (Eq. (1)-(2)).
  kStdDev,                  ///< "w/ SMT": standard deviation criterion.
  kRandom,                  ///< "w/ RMT": uniform random masking.
  kNone,                    ///< "w/o MT": nothing is masked.
};

/// Output of the temporal mask: disjoint masked/unmasked index sets covering
/// [0, length), each sorted ascending.
struct TemporalMask {
  std::vector<std::int64_t> masked;
  std::vector<std::int64_t> unmasked;
};

/// Selects floor(ratio * length) observations to mask from a [length, N]
/// row-major window.
///
/// `cv_method` chooses the naive vs FFT statistic path (only meaningful for
/// the CV variant). `rng` is required for kRandom and ignored otherwise.
TemporalMask ComputeTemporalMask(const std::vector<float>& series,
                                 std::int64_t length,
                                 std::int64_t num_features,
                                 std::int64_t window, double ratio,
                                 TemporalMaskVariant variant,
                                 CvMethod cv_method, Rng* rng);

}  // namespace tfmae::masking

#endif  // TFMAE_MASKING_TEMPORAL_MASK_H_
