// FFT convolution and sliding-window moving sums (Wiener-Khinchin path).
//
// The paper's Eq. (5) replaces the two nested loops of the sliding
// coefficient-of-variation computation with FFT products. The primitive it
// needs is "moving sum of the last W samples at every position", which is a
// correlation of the series with a ones kernel. These helpers expose both a
// direct O(n*W) implementation (for the "w/o FFT" ablation) and the
// FFT-based O(n log n) implementation.
#ifndef TFMAE_FFT_CONVOLUTION_H_
#define TFMAE_FFT_CONVOLUTION_H_

#include <cstdint>
#include <vector>

namespace tfmae::fft {

/// Full linear convolution of two real signals (length a+b-1), via FFT.
std::vector<double> FftConvolve(const std::vector<double>& a,
                                const std::vector<double>& b);

/// Reference O(n*m) linear convolution, for tests and ablations.
std::vector<double> NaiveConvolve(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Moving sum over a trailing window: out[t] = sum_{k=max(0,t-w+1)}^{t} x[k].
/// The first w-1 positions use the truncated (shorter) prefix window, which
/// mirrors the paper's behaviour at the series head.
/// Computed via FFT convolution with a ones kernel; O(n log n).
std::vector<double> MovingSumFft(const std::vector<double>& x, std::int64_t w);

/// Same contract as MovingSumFft but computed with an explicit loop; O(n*w).
/// This is the "w/o FFT" path measured in the Fig. 10 ablation. It is
/// deliberately the textbook nested-loop form (not a prefix-sum trick), since
/// the paper's ablation measures exactly the two-loop statistic computation.
std::vector<double> MovingSumNaive(const std::vector<double>& x,
                                   std::int64_t w);

}  // namespace tfmae::fft

#endif  // TFMAE_FFT_CONVOLUTION_H_
