#include "fft/convolution.h"

#include <algorithm>

#include "fft/fft.h"
#include "util/logging.h"

namespace tfmae::fft {

std::vector<double> FftConvolve(const std::vector<double>& a,
                                const std::vector<double>& b) {
  TFMAE_CHECK(!a.empty() && !b.empty());
  const std::int64_t out_len =
      static_cast<std::int64_t>(a.size() + b.size()) - 1;
  const std::int64_t padded = NextPowerOfTwo(out_len);
  std::vector<Complex> fa(static_cast<std::size_t>(padded), Complex(0, 0));
  std::vector<Complex> fb(static_cast<std::size_t>(padded), Complex(0, 0));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = Complex(a[i], 0);
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = Complex(b[i], 0);
  FftPow2(&fa, /*inverse=*/false);
  FftPow2(&fb, /*inverse=*/false);
  for (std::int64_t i = 0; i < padded; ++i) {
    fa[static_cast<std::size_t>(i)] *= fb[static_cast<std::size_t>(i)];
  }
  FftPow2(&fa, /*inverse=*/true);
  std::vector<double> out(static_cast<std::size_t>(out_len));
  for (std::int64_t i = 0; i < out_len; ++i) {
    out[static_cast<std::size_t>(i)] = fa[static_cast<std::size_t>(i)].real();
  }
  return out;
}

std::vector<double> NaiveConvolve(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  TFMAE_CHECK(!a.empty() && !b.empty());
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

std::vector<double> MovingSumFft(const std::vector<double>& x,
                                 std::int64_t w) {
  TFMAE_CHECK(w >= 1);
  if (x.empty()) return {};
  const std::vector<double> ones(static_cast<std::size_t>(
                                     std::min<std::int64_t>(
                                         w, static_cast<std::int64_t>(x.size()))),
                                 1.0);
  // conv(x, ones)[t] = sum_{j} x[t - j] * 1 for j in [0, w), which is exactly
  // the trailing-window sum once truncated to the first |x| outputs.
  std::vector<double> conv = FftConvolve(x, ones);
  conv.resize(x.size());
  return conv;
}

std::vector<double> MovingSumNaive(const std::vector<double>& x,
                                   std::int64_t w) {
  TFMAE_CHECK(w >= 1);
  const std::int64_t n = static_cast<std::int64_t>(x.size());
  std::vector<double> out(x.size(), 0.0);
  for (std::int64_t t = 0; t < n; ++t) {
    const std::int64_t lo = std::max<std::int64_t>(0, t - w + 1);
    double acc = 0.0;
    for (std::int64_t k = lo; k <= t; ++k) {
      acc += x[static_cast<std::size_t>(k)];
    }
    out[static_cast<std::size_t>(t)] = acc;
  }
  return out;
}

}  // namespace tfmae::fft
