// Fast Fourier Transform library.
//
// TFMAE uses the FFT in two places:
//  1. Amplitude-based frequency masking (paper Eq. (6)-(10)): the input
//     series is transformed with the DFT, low-amplitude bins are replaced by
//     a learnable value, and the series is transformed back.
//  2. FFT-accelerated sliding-window statistics (paper Eq. (5)): the
//     coefficient-of-variation computation is a correlation with a ones
//     kernel, evaluated via the Wiener-Khinchin theorem.
//
// The implementation is an iterative radix-2 Cooley-Tukey transform for
// power-of-two lengths plus Bluestein's chirp-z algorithm for arbitrary
// lengths, so window sizes need not be powers of two (the paper uses
// |S| = 100).
#ifndef TFMAE_FFT_FFT_H_
#define TFMAE_FFT_FFT_H_

#include <complex>
#include <cstdint>
#include <vector>

namespace tfmae::fft {

using Complex = std::complex<double>;

/// True iff n is a power of two (n >= 1).
bool IsPowerOfTwo(std::int64_t n);

/// Smallest power of two >= n.
std::int64_t NextPowerOfTwo(std::int64_t n);

/// In-place forward FFT. data.size() must be a power of two.
void FftPow2(std::vector<Complex>* data, bool inverse);

/// Forward DFT of arbitrary length (radix-2 when possible, Bluestein
/// otherwise). Returns X[k] = sum_t x[t] * exp(-2*pi*i*k*t/n).
std::vector<Complex> Fft(const std::vector<Complex>& input);

/// Inverse DFT, normalized by 1/n: x[t] = (1/n) sum_k X[k] exp(+2*pi*i*k*t/n).
std::vector<Complex> Ifft(const std::vector<Complex>& input);

/// Forward DFT of a real signal; returns all n complex bins.
std::vector<Complex> RealFft(const std::vector<double>& input);

/// Inverse DFT of a spectrum assumed to come from a real signal; returns the
/// real part of the inverse transform (imaginary residue is discarded).
std::vector<double> RealIfft(const std::vector<Complex>& spectrum);

/// Reference O(n^2) DFT, used by tests and by the "w/o FFT" efficiency
/// ablation (Fig. 10) to quantify the FFT speed-up.
std::vector<Complex> NaiveDft(const std::vector<Complex>& input,
                              bool inverse = false);

/// Per-bin amplitude |X[k]| of a spectrum (paper Eq. (7)).
std::vector<double> Amplitude(const std::vector<Complex>& spectrum);

}  // namespace tfmae::fft

#endif  // TFMAE_FFT_FFT_H_
