#include "fft/fft.h"

#include <cmath>

#include "obs/trace.h"
#include "util/logging.h"

namespace tfmae::fft {
namespace {

// Bit-reversal permutation for the iterative radix-2 transform.
void BitReverse(std::vector<Complex>* data) {
  const std::size_t n = data->size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap((*data)[i], (*data)[j]);
  }
}

// Bluestein's algorithm: expresses an arbitrary-length DFT as a convolution,
// evaluated with a power-of-two FFT.
std::vector<Complex> Bluestein(const std::vector<Complex>& input,
                               bool inverse) {
  const std::int64_t n = static_cast<std::int64_t>(input.size());
  const double sign = inverse ? 1.0 : -1.0;

  // Chirp: w[t] = exp(sign * i * pi * t^2 / n). t^2 is taken mod 2n to keep
  // the argument small and the chirp exactly periodic.
  std::vector<Complex> chirp(static_cast<std::size_t>(n));
  for (std::int64_t t = 0; t < n; ++t) {
    const std::int64_t t2 = (t * t) % (2 * n);
    const double angle = sign * M_PI * static_cast<double>(t2) /
                         static_cast<double>(n);
    chirp[static_cast<std::size_t>(t)] = Complex(std::cos(angle),
                                                 std::sin(angle));
  }

  const std::int64_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<Complex> a(static_cast<std::size_t>(m), Complex(0, 0));
  std::vector<Complex> b(static_cast<std::size_t>(m), Complex(0, 0));
  for (std::int64_t t = 0; t < n; ++t) {
    a[static_cast<std::size_t>(t)] =
        input[static_cast<std::size_t>(t)] * chirp[static_cast<std::size_t>(t)];
  }
  b[0] = std::conj(chirp[0]);
  for (std::int64_t t = 1; t < n; ++t) {
    const Complex value = std::conj(chirp[static_cast<std::size_t>(t)]);
    b[static_cast<std::size_t>(t)] = value;
    b[static_cast<std::size_t>(m - t)] = value;
  }

  FftPow2(&a, /*inverse=*/false);
  FftPow2(&b, /*inverse=*/false);
  for (std::int64_t i = 0; i < m; ++i) {
    a[static_cast<std::size_t>(i)] *= b[static_cast<std::size_t>(i)];
  }
  FftPow2(&a, /*inverse=*/true);

  std::vector<Complex> output(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    output[static_cast<std::size_t>(k)] =
        a[static_cast<std::size_t>(k)] * chirp[static_cast<std::size_t>(k)];
  }
  return output;
}

}  // namespace

bool IsPowerOfTwo(std::int64_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::int64_t NextPowerOfTwo(std::int64_t n) {
  std::int64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void FftPow2(std::vector<Complex>* data, bool inverse) {
  const std::size_t n = data->size();
  TFMAE_CHECK_MSG(IsPowerOfTwo(static_cast<std::int64_t>(n)),
                  "FftPow2 requires a power-of-two length, got " << n);
  if (n == 1) return;
  BitReverse(data);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = (*data)[i + j];
        const Complex v = (*data)[i + j + len / 2] * w;
        (*data)[i + j] = u + v;
        (*data)[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& value : *data) value *= inv_n;
  }
}

std::vector<Complex> Fft(const std::vector<Complex>& input) {
  TFMAE_CHECK(!input.empty());
  TFMAE_TRACE("fft.fft");
  TFMAE_COUNTER_ADD("fft.fft.points", input.size());
  if (IsPowerOfTwo(static_cast<std::int64_t>(input.size()))) {
    std::vector<Complex> data = input;
    FftPow2(&data, /*inverse=*/false);
    return data;
  }
  return Bluestein(input, /*inverse=*/false);
}

std::vector<Complex> Ifft(const std::vector<Complex>& input) {
  TFMAE_CHECK(!input.empty());
  TFMAE_TRACE("fft.ifft");
  TFMAE_COUNTER_ADD("fft.ifft.points", input.size());
  const double inv_n = 1.0 / static_cast<double>(input.size());
  if (IsPowerOfTwo(static_cast<std::int64_t>(input.size()))) {
    std::vector<Complex> data = input;
    FftPow2(&data, /*inverse=*/true);
    return data;
  }
  std::vector<Complex> out = Bluestein(input, /*inverse=*/true);
  for (auto& value : out) value *= inv_n;
  return out;
}

std::vector<Complex> RealFft(const std::vector<double>& input) {
  std::vector<Complex> data(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) data[i] = Complex(input[i], 0);
  return Fft(data);
}

std::vector<double> RealIfft(const std::vector<Complex>& spectrum) {
  std::vector<Complex> inv = Ifft(spectrum);
  std::vector<double> out(inv.size());
  for (std::size_t i = 0; i < inv.size(); ++i) out[i] = inv[i].real();
  return out;
}

std::vector<Complex> NaiveDft(const std::vector<Complex>& input,
                              bool inverse) {
  const std::int64_t n = static_cast<std::int64_t>(input.size());
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<Complex> output(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    Complex acc(0, 0);
    for (std::int64_t t = 0; t < n; ++t) {
      const double angle = sign * 2.0 * M_PI * static_cast<double>(k) *
                           static_cast<double>(t) / static_cast<double>(n);
      acc += input[static_cast<std::size_t>(t)] *
             Complex(std::cos(angle), std::sin(angle));
    }
    if (inverse) acc /= static_cast<double>(n);
    output[static_cast<std::size_t>(k)] = acc;
  }
  return output;
}

std::vector<double> Amplitude(const std::vector<Complex>& spectrum) {
  std::vector<double> amp(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) amp[i] = std::abs(spectrum[i]);
  return amp;
}

}  // namespace tfmae::fft
