// Wall-clock timing for the efficiency study (Fig. 10) and micro-benches.
#ifndef TFMAE_UTIL_STOPWATCH_H_
#define TFMAE_UTIL_STOPWATCH_H_

#include <chrono>

namespace tfmae {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts the stopwatch.
  void Reset();

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace tfmae

#endif  // TFMAE_UTIL_STOPWATCH_H_
