// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the integrity
// check of the checkpoint container (util/checkpoint_file.h). Chosen over a
// cryptographic hash because checkpoint corruption is torn writes and bit
// rot, not adversaries, and a table-driven CRC costs ~1 cycle/byte.
#ifndef TFMAE_UTIL_CRC32_H_
#define TFMAE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace tfmae::util {

/// CRC-32 of `size` bytes at `data`. `crc` chains partial computations:
/// Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b), na + nb). The default
/// of 0 starts a fresh checksum ("123456789" -> 0xCBF43926).
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t crc = 0);

}  // namespace tfmae::util

#endif  // TFMAE_UTIL_CRC32_H_
