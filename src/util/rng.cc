#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace tfmae {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used only to expand the user seed into the xoshiro state.
inline std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

Rng::State Rng::GetState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<std::int64_t> Rng::SampleWithoutReplacement(std::int64_t n,
                                                        std::int64_t k) {
  assert(k >= 0 && k <= n);
  // Partial Fisher-Yates over an index vector.
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (std::int64_t i = 0; i < k; ++i) {
    const std::int64_t j =
        i + static_cast<std::int64_t>(UniformInt(static_cast<std::uint64_t>(n - i)));
    std::swap(idx[static_cast<std::size_t>(i)], idx[static_cast<std::size_t>(j)]);
  }
  idx.resize(static_cast<std::size_t>(k));
  return idx;
}

}  // namespace tfmae
