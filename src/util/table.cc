#include "util/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace tfmae {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToAligned() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

namespace {
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string escaped = "\"";
  for (char ch : cell) {
    if (ch == '"') escaped += "\"\"";
    else escaped += ch;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out << ',';
      out << CsvEscape(row[c]);
    }
    out << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << ToCsv();
  return static_cast<bool>(file);
}

std::string Table::Num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace tfmae
