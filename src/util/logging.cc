#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace tfmae {
namespace {
LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

namespace internal {
void CheckFailed(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[FATAL] %s:%d %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}
}  // namespace internal

void SetLogLevel(LogLevel level) { g_min_level = level; }

void Log(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_min_level)) return;
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace tfmae
