// Deterministic fault injection — the test substrate of the resilience
// plane (docs/RESILIENCE.md).
//
// Production code marks its recoverable failure sites with
// `TFMAE_FAULT("point.name")`, which evaluates to true when that point is
// configured to fire. In a default build (-DTFMAE_FAULTS=OFF) the macro is
// the literal `false`: every site folds away and the binary carries zero
// fault code. With -DTFMAE_FAULTS=ON the registry decides, driven entirely
// by an explicit seed so sweeps are reproducible.
//
// Spec grammar (TFMAE_FAULTS environment variable or Configure()):
//
//   spec    := entry ("," entry)*
//   entry   := point ":" trigger
//   trigger := probability            e.g. "io.checkpoint_write:0.05"
//            | "#" occurrence         e.g. "train.interrupt:#12"
//
// A probability trigger fires each check with the given chance, drawn from
// a per-point Rng seeded with `seed ^ hash(point)` — decisions at one point
// do not perturb another point's sequence, and equal (spec, seed) pairs
// reproduce exactly. An occurrence trigger fires on exactly the n-th check
// (1-based) of that point and never again — the precise scalpel the
// kill-and-resume tests use.
//
// Every configured point maintains `fault.injected.<point>` and
// `fault.checks.<point>` counters, surfaced through AllCounts(). The obs
// exporters merge these into every metrics dump, so injected faults are
// visible in --obs_json output alongside the recovery counters they provoke
// (util must not depend on obs, hence the pull model).
//
// Points are checked from the training loop and serialization paths only
// (single-threaded call sites); the registry still takes a mutex so stray
// multi-threaded checks are safe, merely serialized.
#ifndef TFMAE_UTIL_FAULT_H_
#define TFMAE_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tfmae::fault {

/// True in -DTFMAE_FAULTS=ON builds (the only builds where TFMAE_FAULT
/// sites consult the registry).
constexpr bool CompiledIn() {
#if defined(TFMAE_FAULTS_ENABLED)
  return true;
#else
  return false;
#endif
}

/// Replaces the active configuration with `spec` (see grammar above).
/// An empty spec disables all points. CHECK-fails on a malformed spec —
/// a typo'd fault plan must not silently test nothing.
void Configure(const std::string& spec, std::uint64_t seed = 1);

/// Non-aborting Configure: returns false (reason in `*error`, live registry
/// untouched — all-or-nothing) on a malformed spec. For callers that accept
/// specs from outside the process and want to report instead of abort;
/// Configure() delegates here and CHECKs the result.
bool TryConfigure(const std::string& spec, std::uint64_t seed = 1,
                  std::string* error = nullptr);

/// Configure() from the TFMAE_FAULTS / TFMAE_FAULTS_SEED environment
/// variables. Never called automatically: binaries opt in (benches and
/// examples via their flag glue, tests via ScopedFaults), so an exported
/// TFMAE_FAULTS cannot perturb processes that did not ask for it.
void ConfigureFromEnv();

/// Removes every configured point.
void Clear();

/// Decision function behind TFMAE_FAULT. Returns true when `point` is
/// configured and its trigger fires for this check. Unconfigured points
/// return false and cost one mutex acquisition + map lookup (fault builds
/// are test builds; the default build never calls this).
bool ShouldInject(const char* point);

/// Times `point` fired / was checked since its configuration.
std::uint64_t InjectedCount(const std::string& point);
std::uint64_t CheckCount(const std::string& point);

/// All live fault counters as ("fault.injected.<point>", n) and
/// ("fault.checks.<point>", n) pairs, sorted by name. Empty when nothing is
/// configured — the obs exporters splice this into their dumps.
std::vector<std::pair<std::string, std::uint64_t>> AllCounts();

/// RAII configuration for tests: applies (spec, seed), restores an empty
/// registry on destruction.
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec, std::uint64_t seed = 1) {
    Configure(spec, seed);
  }
  ~ScopedFaults() { Clear(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace tfmae::fault

#if defined(TFMAE_FAULTS_ENABLED)
#define TFMAE_FAULT(point) (::tfmae::fault::ShouldInject(point))
#else
#define TFMAE_FAULT(point) (false)
#endif

#endif  // TFMAE_UTIL_FAULT_H_
