#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "util/logging.h"

namespace tfmae {
namespace {

// Set while a thread is executing chunks of a dispatch; nested ParallelFor
// calls from inside a kernel run inline (same chunk boundaries) instead of
// deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("TFMAE_NUM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool& ThreadPool::Instance() {
  static ThreadPool* pool = new ThreadPool(DefaultNumThreads());
  return *pool;
}

ThreadPool::ThreadPool(int num_threads) {
  StartWorkers(std::max(1, num_threads) - 1);
}

ThreadPool::~ThreadPool() { StopWorkers(); }

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size()) + 1;
}

void ThreadPool::SetNumThreads(int n) {
  StopWorkers();
  StartWorkers(std::max(1, n) - 1);
}

void ThreadPool::StartWorkers(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  TFMAE_CHECK(workers_.empty() && !busy_);
  shutdown_ = false;
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::StopWorkers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  workers_.clear();
  shutdown_ = false;
}

std::int64_t ThreadPool::ClaimAndRun() {
  t_in_parallel_region = true;
  std::int64_t done = 0;
  for (;;) {
    const std::int64_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= num_chunks_) break;
    const std::int64_t s = begin_ + c * grain_;
    const std::int64_t e = std::min(end_, s + grain_);
    (*fn_)(s, e);
    ++done;
  }
  t_in_parallel_region = false;
  return done;
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (busy_ && epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
      ++active_workers_;
    }
    const std::int64_t done = ClaimAndRun();
    {
      std::lock_guard<std::mutex> lock(mu_);
      chunks_done_ += done;
      --active_workers_;
      if (chunks_done_ == num_chunks_ && active_workers_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  const std::int64_t g = std::max<std::int64_t>(1, grain);
  const std::int64_t num_chunks = (end - begin + g - 1) / g;

  bool inline_run = t_in_parallel_region || num_chunks == 1;
  if (!inline_run) {
    std::lock_guard<std::mutex> lock(mu_);
    inline_run = workers_.empty();
  }
  if (inline_run) {
    // Same chunk boundaries as the parallel path, executed in index order.
    for (std::int64_t s = begin; s < end; s += g) {
      fn(s, std::min(end, s + g));
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    begin_ = begin;
    end_ = end;
    grain_ = g;
    num_chunks_ = num_chunks;
    chunks_done_ = 0;
    next_chunk_.store(0, std::memory_order_relaxed);
    ++epoch_;
    busy_ = true;
  }
  work_cv_.notify_all();

  const std::int64_t done = ClaimAndRun();

  std::unique_lock<std::mutex> lock(mu_);
  chunks_done_ += done;
  done_cv_.wait(lock, [&] {
    return chunks_done_ == num_chunks_ && active_workers_ == 0;
  });
  busy_ = false;
  fn_ = nullptr;
}

void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn) {
  ThreadPool::Instance().ParallelFor(begin, end, grain, fn);
}

}  // namespace tfmae
