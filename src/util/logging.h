// Minimal leveled logging and check macros.
//
// TFMAE_CHECK is used for programmer-error preconditions (shape mismatches,
// invalid configs). It aborts with a message; it is NOT compiled out in
// release builds, matching the database-engine convention that internal
// invariant violations must never be silently ignored.
#ifndef TFMAE_UTIL_LOGGING_H_
#define TFMAE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace tfmae {

namespace internal {
/// Prints the message to stderr and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line,
                              const std::string& message);
}  // namespace internal

/// Log levels in increasing severity.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that Log() actually emits. Default: kInfo.
void SetLogLevel(LogLevel level);

/// Emits `message` to stderr if `level` passes the configured threshold.
void Log(LogLevel level, const std::string& message);

}  // namespace tfmae

#define TFMAE_CHECK(condition)                                             \
  do {                                                                     \
    if (!(condition)) {                                                    \
      ::tfmae::internal::CheckFailed(__FILE__, __LINE__,                   \
                                     "Check failed: " #condition);         \
    }                                                                      \
  } while (0)

#define TFMAE_CHECK_MSG(condition, msg)                                    \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::ostringstream tfmae_check_stream;                               \
      tfmae_check_stream << "Check failed: " #condition << " — " << msg;   \
      ::tfmae::internal::CheckFailed(__FILE__, __LINE__,                   \
                                     tfmae_check_stream.str());            \
    }                                                                      \
  } while (0)

#endif  // TFMAE_UTIL_LOGGING_H_
