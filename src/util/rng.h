// Deterministic pseudo-random number generation.
//
// Every stochastic component in this repository (data generation, parameter
// initialization, random masking variants, isolation-forest splits) draws
// from an explicitly seeded Rng so that tests, benches, and examples are
// reproducible run-to-run and machine-to-machine.
#ifndef TFMAE_UTIL_RNG_H_
#define TFMAE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace tfmae {

/// A small deterministic RNG (xoshiro256**) with convenience samplers.
///
/// Not thread-safe; create one instance per thread or component. The engine
/// is self-contained (no libstdc++ distribution objects) so that sequences
/// are identical across standard-library implementations.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal sequences.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Standard normal sample (Box-Muller, cached pair).
  double Normal();

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Returns k distinct indices drawn uniformly from [0, n).
  /// Requires k <= n. Order of the returned indices is unspecified.
  std::vector<std::int64_t> SampleWithoutReplacement(std::int64_t n,
                                                     std::int64_t k);

  /// Complete engine state — everything needed to continue the sequence
  /// bitwise-identically after a save/restore round trip (training
  /// checkpoints persist this; see docs/RESILIENCE.md).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };

  State GetState() const;
  void SetState(const State& state);

  /// Fisher-Yates shuffles the vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tfmae

#endif  // TFMAE_UTIL_RNG_H_
