// Process-wide thread pool for the tensor backend.
//
// Design goals, in order:
//  1. Determinism: ParallelFor splits [begin, end) into chunks at fixed
//     boundaries begin + i*grain that depend only on (begin, end, grain),
//     never on the number of threads. Each chunk is executed exactly once by
//     exactly one thread, so any computation whose writes are disjoint per
//     chunk — and whose reductions combine per-chunk partials in index
//     order — produces bit-identical results at every pool size, including
//     the serial fallback.
//  2. Simplicity: a single mutex/condvar pair and an atomic chunk cursor.
//     Chunks are claimed dynamically (no work stealing, no per-thread
//     queues); the caller participates in the work and blocks until the
//     dispatch has fully quiesced, so the pool holds no state between calls.
//  3. Zero cost when parallelism cannot help: a dispatch that resolves to a
//     single chunk, a pool of size one, and any ParallelFor issued from
//     inside a worker all run inline on the calling thread.
//
// The pool is a lazy singleton sized from the TFMAE_NUM_THREADS environment
// variable (default: std::thread::hardware_concurrency). Benchmarks and
// tests may resize it with SetNumThreads(); resizing never changes results,
// only wall-clock time.
#ifndef TFMAE_UTIL_THREAD_POOL_H_
#define TFMAE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tfmae {

class ThreadPool {
 public:
  /// The process-wide pool, created on first use. Intentionally leaked at
  /// exit so worker threads never race static destruction.
  static ThreadPool& Instance();

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in a dispatch (workers + the caller).
  int num_threads() const;

  /// Joins all workers and respawns `n - 1` of them (the caller is thread
  /// zero). Must not race an in-flight ParallelFor; intended for benchmarks
  /// and tests that sweep thread counts.
  void SetNumThreads(int n);

  /// Invokes fn(s, e) over disjoint subranges [s, e) covering [begin, end),
  /// cut at begin + i*grain (grain is clamped to >= 1). Blocks until every
  /// chunk has finished. fn must not throw.
  void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  explicit ThreadPool(int num_threads);

  void StartWorkers(int count);
  void StopWorkers();
  void WorkerLoop();
  /// Claims chunks of the current dispatch until none remain; returns the
  /// number of chunks this thread executed.
  std::int64_t ClaimAndRun();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // new dispatch available / shutdown
  std::condition_variable done_cv_;  // dispatch fully finished
  std::vector<std::thread> workers_;
  bool shutdown_ = false;

  // State of the in-flight dispatch; written under mu_ before workers are
  // woken, constant while they run.
  const std::function<void(std::int64_t, std::int64_t)>* fn_ = nullptr;
  std::int64_t begin_ = 0;
  std::int64_t end_ = 0;
  std::int64_t grain_ = 1;
  std::int64_t num_chunks_ = 0;
  std::atomic<std::int64_t> next_chunk_{0};
  std::int64_t chunks_done_ = 0;   // guarded by mu_
  int active_workers_ = 0;         // guarded by mu_
  std::uint64_t epoch_ = 0;        // guarded by mu_; bumped per dispatch
  bool busy_ = false;              // guarded by mu_
};

/// ParallelFor on the singleton pool. See ThreadPool::ParallelFor.
void ParallelFor(std::int64_t begin, std::int64_t end, std::int64_t grain,
                 const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace tfmae

#endif  // TFMAE_UTIL_THREAD_POOL_H_
