#include "util/memory.h"

#include <atomic>

namespace tfmae {
namespace {

std::atomic<std::int64_t> g_current{0};
std::atomic<std::int64_t> g_peak{0};
std::atomic<std::int64_t> g_alloc_calls{0};
std::atomic<std::int64_t> g_grad_alloc_calls{0};

void UpdatePeak(std::int64_t current) {
  std::int64_t peak = g_peak.load(std::memory_order_relaxed);
  while (current > peak &&
         !g_peak.compare_exchange_weak(peak, current,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

void MemoryStats::RecordAlloc(std::size_t bytes) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t current =
      g_current.fetch_add(static_cast<std::int64_t>(bytes),
                          std::memory_order_relaxed) +
      static_cast<std::int64_t>(bytes);
  UpdatePeak(current);
}

void MemoryStats::RecordGradAlloc(std::size_t bytes) {
  g_grad_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  RecordAlloc(bytes);
}

void MemoryStats::RecordFree(std::size_t bytes) {
  g_current.fetch_sub(static_cast<std::int64_t>(bytes),
                      std::memory_order_relaxed);
}

std::int64_t MemoryStats::CurrentBytes() {
  return g_current.load(std::memory_order_relaxed);
}

std::int64_t MemoryStats::PeakBytes() {
  return g_peak.load(std::memory_order_relaxed);
}

void MemoryStats::ResetPeak() {
  g_peak.store(g_current.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

std::int64_t MemoryStats::AllocCalls() {
  return g_alloc_calls.load(std::memory_order_relaxed);
}

std::int64_t MemoryStats::GradAllocCalls() {
  return g_grad_alloc_calls.load(std::memory_order_relaxed);
}

}  // namespace tfmae
