#include "util/checkpoint_file.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/crc32.h"
#include "util/fault.h"
#include "util/logging.h"

namespace tfmae::util {
namespace {

constexpr char kMagic[8] = {'T', 'F', 'M', 'A', 'E', 'C', 'K', 'P'};

// A section name or array longer than this is treated as corruption rather
// than allocated: length prefixes are attacker^W bit-flip controlled.
constexpr std::uint64_t kMaxSectionName = 1 << 10;
constexpr std::uint64_t kMaxPayload = 1ull << 34;  // 16 GiB

}  // namespace

// ---- ByteWriter -------------------------------------------------------------

void ByteWriter::String(const std::string& s) {
  U32(static_cast<std::uint32_t>(s.size()));
  Raw(s.data(), s.size());
}

void ByteWriter::FloatArray(const std::vector<float>& v) {
  U64(static_cast<std::uint64_t>(v.size()));
  Raw(v.data(), v.size() * sizeof(float));
}

void ByteWriter::I64Array(const std::vector<std::int64_t>& v) {
  U64(static_cast<std::uint64_t>(v.size()));
  Raw(v.data(), v.size() * sizeof(std::int64_t));
}

void ByteWriter::Raw(const void* data, std::size_t size) {
  const char* bytes = static_cast<const char*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
}

// ---- ByteReader -------------------------------------------------------------

bool ByteReader::String(std::string* s) {
  std::uint32_t len = 0;
  if (!U32(&len) || len > kMaxSectionName || size_ - pos_ < len) {
    ok_ = false;
    return false;
  }
  s->assign(data_ + pos_, len);
  pos_ += len;
  return true;
}

bool ByteReader::FloatArray(std::vector<float>* v) {
  std::uint64_t count = 0;
  if (!U64(&count) || count > (size_ - pos_) / sizeof(float)) {
    ok_ = false;
    return false;
  }
  v->resize(static_cast<std::size_t>(count));
  return Raw(v->data(), static_cast<std::size_t>(count) * sizeof(float));
}

bool ByteReader::I64Array(std::vector<std::int64_t>* v) {
  std::uint64_t count = 0;
  if (!U64(&count) || count > (size_ - pos_) / sizeof(std::int64_t)) {
    ok_ = false;
    return false;
  }
  v->resize(static_cast<std::size_t>(count));
  return Raw(v->data(), static_cast<std::size_t>(count) * sizeof(std::int64_t));
}

bool ByteReader::Raw(void* out, std::size_t size) {
  if (!ok_ || size_ - pos_ < size) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + pos_, size);
  pos_ += size;
  return true;
}

// ---- CheckpointFileWriter ---------------------------------------------------

void CheckpointFileWriter::AddSection(std::string name,
                                      std::vector<char> payload) {
  sections_.emplace_back(std::move(name), std::move(payload));
}

bool CheckpointFileWriter::WriteAtomic(const std::string& path) const {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    for (std::size_t j = i + 1; j < sections_.size(); ++j) {
      if (sections_[i].first == sections_[j].first) {
        Log(LogLevel::kError,
            "checkpoint: duplicate section '" + sections_[i].first + "'");
        return false;
      }
    }
  }
  if (TFMAE_FAULT("io.checkpoint_write")) {
    Log(LogLevel::kWarning, "checkpoint: injected io_write fault on " + path);
    return false;
  }

  // Serialize the whole container in memory first; the file-level CRC covers
  // every byte before the trailer.
  ByteWriter writer;
  writer.Raw(kMagic, sizeof(kMagic));
  writer.U32(kCheckpointContainerVersion);
  writer.U32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    writer.String(name);
    writer.U64(static_cast<std::uint64_t>(payload.size()));
    writer.U32(Crc32(payload.data(), payload.size()));
    writer.Raw(payload.data(), payload.size());
  }
  const std::vector<char>& body = writer.buffer();
  const std::uint32_t file_crc = Crc32(body.data(), body.size());

  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream file(tmp_path, std::ios::binary | std::ios::trunc);
    if (!file) return false;
    file.write(body.data(), static_cast<std::streamsize>(body.size()));
    file.write(reinterpret_cast<const char*>(&file_crc), sizeof(file_crc));
    file.flush();
    if (!file) {
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

// ---- CheckpointFileReader ---------------------------------------------------

std::optional<CheckpointFileReader> CheckpointFileReader::Open(
    const std::string& path, std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };

  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return fail("cannot open " + path);
  const std::streamsize size = file.tellg();
  if (size < static_cast<std::streamsize>(sizeof(kMagic) + 3 * sizeof(
                                              std::uint32_t))) {
    return fail("file too short");
  }
  std::vector<char> bytes(static_cast<std::size_t>(size));
  file.seekg(0);
  file.read(bytes.data(), size);
  if (!file) return fail("short read");

  // Whole-file CRC first: any torn tail or flipped bit fails here already.
  const std::size_t body_size = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored_file_crc = 0;
  std::memcpy(&stored_file_crc, bytes.data() + body_size,
              sizeof(stored_file_crc));
  if (Crc32(bytes.data(), body_size) != stored_file_crc) {
    return fail("file checksum mismatch");
  }

  ByteReader reader(bytes.data(), body_size);
  char magic[sizeof(kMagic)];
  if (!reader.Raw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic");
  }
  std::uint32_t version = 0;
  if (!reader.U32(&version) || version != kCheckpointContainerVersion) {
    return fail("unsupported container version");
  }
  std::uint32_t count = 0;
  if (!reader.U32(&count)) return fail("truncated header");

  CheckpointFileReader result;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::uint64_t payload_len = 0;
    std::uint32_t crc = 0;
    if (!reader.String(&name) || !reader.U64(&payload_len) ||
        !reader.U32(&crc) || payload_len > kMaxPayload) {
      return fail("truncated section header");
    }
    std::vector<char> payload(static_cast<std::size_t>(payload_len));
    if (!reader.Raw(payload.data(), payload.size())) {
      return fail("truncated section payload");
    }
    if (Crc32(payload.data(), payload.size()) != crc) {
      return fail("section '" + name + "' checksum mismatch");
    }
    result.sections_.emplace_back(std::move(name), std::move(payload));
  }
  if (!reader.AtEnd()) return fail("trailing garbage");
  return result;
}

const std::vector<char>* CheckpointFileReader::Section(
    const std::string& name) const {
  for (const auto& [section_name, payload] : sections_) {
    if (section_name == name) return &payload;
  }
  return nullptr;
}

}  // namespace tfmae::util
