// Aligned-console-table and CSV emission for the bench report generators.
//
// Every table/figure harness in bench/ prints (a) a human-readable aligned
// table mirroring the paper's layout and (b) a machine-readable CSV next to
// it, so results can be diffed run-to-run.
#ifndef TFMAE_UTIL_TABLE_H_
#define TFMAE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace tfmae {

/// Collects rows of string cells and renders them aligned or as CSV.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row. Rows shorter than the header are padded with "".
  void AddRow(std::vector<std::string> cells);

  /// Number of data rows (excluding the header).
  std::size_t NumRows() const { return rows_.size(); }

  /// Renders the table with space-aligned columns and a separator rule.
  std::string ToAligned() const;

  /// Renders the table as RFC-4180-ish CSV (quotes cells containing , or ").
  std::string ToCsv() const;

  /// Writes ToCsv() to the given path. Returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  /// Formats a double with the given precision (default mirrors the paper's
  /// two decimals for percentages).
  static std::string Num(double value, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tfmae

#endif  // TFMAE_UTIL_TABLE_H_
