#include "util/fault.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

#include "util/logging.h"
#include "util/rng.h"

namespace tfmae::fault {
namespace {

struct Point {
  // Exactly one trigger is active: fire_at > 0 selects occurrence mode.
  double probability = 0.0;
  std::uint64_t fire_at = 0;  // 1-based check index; 0 = probability mode
  Rng rng{0};
  std::uint64_t checks = 0;
  std::uint64_t fires = 0;
};

struct State {
  std::mutex mu;
  std::map<std::string, Point> points;
};

State& GetState() {
  static State* state = new State();  // leaked: checked from atexit paths
  return *state;
}

// FNV-1a, to give each point an independent stream from the same seed.
std::uint64_t HashName(const std::string& name) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : name) h = (h ^ c) * 0x100000001B3ull;
  return h;
}

}  // namespace

bool TryConfigure(const std::string& spec, std::uint64_t seed,
                  std::string* error) {
  // Parse into a scratch map first: a malformed spec must leave the live
  // registry untouched (all-or-nothing, like every other config load here).
  std::map<std::string, Point> parsed;
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      return fail("fault spec entry must be point:trigger, got '" + entry +
                  "'");
    }
    const std::string name = entry.substr(0, colon);
    const std::string trigger = entry.substr(colon + 1);
    Point point;
    point.rng = Rng(seed ^ HashName(name));
    if (trigger[0] == '#') {
      char* parse_end = nullptr;
      const unsigned long long n =
          std::strtoull(trigger.c_str() + 1, &parse_end, 10);
      if (parse_end == nullptr || parse_end == trigger.c_str() + 1 ||
          *parse_end != '\0' || n < 1) {
        return fail("bad occurrence trigger '" + trigger + "'");
      }
      point.fire_at = n;
    } else {
      char* parse_end = nullptr;
      const double p = std::strtod(trigger.c_str(), &parse_end);
      if (parse_end == nullptr || parse_end == trigger.c_str() ||
          *parse_end != '\0' || !(p >= 0.0 && p <= 1.0)) {
        return fail("bad probability trigger '" + trigger + "'");
      }
      point.probability = p;
    }
    parsed.insert_or_assign(name, std::move(point));
  }
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.points = std::move(parsed);
  return true;
}

void Configure(const std::string& spec, std::uint64_t seed) {
  std::string error;
  const bool ok = TryConfigure(spec, seed, &error);
  TFMAE_CHECK_MSG(ok, error);
}

void ConfigureFromEnv() {
  const char* spec = std::getenv("TFMAE_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  std::uint64_t seed = 1;
  if (const char* seed_env = std::getenv("TFMAE_FAULTS_SEED")) {
    seed = std::strtoull(seed_env, nullptr, 10);
  }
  Configure(spec, seed);
  Log(LogLevel::kWarning,
      std::string("fault injection active: TFMAE_FAULTS=") + spec);
}

void Clear() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.points.clear();
}

bool ShouldInject(const char* point) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.points.find(point);
  if (it == state.points.end()) return false;
  Point& p = it->second;
  ++p.checks;
  bool fire = false;
  if (p.fire_at > 0) {
    fire = p.checks == p.fire_at;
  } else if (p.probability > 0.0) {
    fire = p.rng.Bernoulli(p.probability);
  }
  if (fire) ++p.fires;
  return fire;
}

std::uint64_t InjectedCount(const std::string& point) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.points.find(point);
  return it == state.points.end() ? 0 : it->second.fires;
}

std::uint64_t CheckCount(const std::string& point) {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  auto it = state.points.find(point);
  return it == state.points.end() ? 0 : it->second.checks;
}

std::vector<std::pair<std::string, std::uint64_t>> AllCounts() {
  State& state = GetState();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<std::pair<std::string, std::uint64_t>> counts;
  counts.reserve(state.points.size() * 2);
  for (const auto& [name, point] : state.points) {
    counts.emplace_back("fault.checks." + name, point.checks);
    counts.emplace_back("fault.injected." + name, point.fires);
  }
  std::sort(counts.begin(), counts.end());
  return counts;
}

}  // namespace tfmae::fault
