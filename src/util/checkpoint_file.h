// Crash-safe sectioned checkpoint container.
//
// Every persistent artifact of the resilience plane (network weights,
// TrainingCheckpoint bundles) is one container file:
//
//   magic "TFMAECKP" | u32 container version | u32 section count
//   per section: u32 name_len | name bytes | u64 payload_len |
//                u32 crc32(payload) | payload bytes
//   trailer: u32 crc32(everything before the trailer)
//
// Integrity contract (docs/RESILIENCE.md):
//  * Writes are atomic: the container is written to "<path>.tmp", flushed,
//    and renamed over `path`. Readers therefore never observe a torn file at
//    `path` — a crash mid-write leaves either the old file or a stray .tmp.
//  * Every section carries its own CRC-32 and the file carries a whole-file
//    CRC, so truncation, bit flips, and foreign files are all detected at
//    Open() time; a corrupt container is rejected as a unit.
//
// ByteWriter/ByteReader are the little-endian plain-old-data codec used to
// build section payloads; ByteReader is bounds-checked and never reads past
// the payload (a corrupted length fails the read instead of invoking UB).
#ifndef TFMAE_UTIL_CHECKPOINT_FILE_H_
#define TFMAE_UTIL_CHECKPOINT_FILE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tfmae::util {

/// Bumped when the container layout changes; readers reject other versions.
constexpr std::uint32_t kCheckpointContainerVersion = 1;

/// Appends plain-old-data values to a growing byte buffer.
class ByteWriter {
 public:
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(std::int64_t v) { Raw(&v, sizeof(v)); }
  void F32(float v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void String(const std::string& s);
  void FloatArray(const std::vector<float>& v);
  void I64Array(const std::vector<std::int64_t>& v);
  void Raw(const void* data, std::size_t size);

  std::vector<char> Take() { return std::move(buffer_); }
  const std::vector<char>& buffer() const { return buffer_; }

 private:
  std::vector<char> buffer_;
};

/// Bounds-checked reader over a byte span. Every accessor returns false once
/// the payload is exhausted or a length prefix is implausible; `ok()` stays
/// false from the first failure on (monadic error handling, no exceptions).
class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<char>& buffer)
      : ByteReader(buffer.data(), buffer.size()) {}

  bool U32(std::uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(std::uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(std::int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F32(float* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool String(std::string* s);
  bool FloatArray(std::vector<float>* v);
  bool I64Array(std::vector<std::int64_t>* v);
  bool Raw(void* out, std::size_t size);

  bool ok() const { return ok_; }
  /// True when the whole payload was consumed (trailing garbage detection).
  bool AtEnd() const { return ok_ && pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Builds a container in memory and commits it atomically.
class CheckpointFileWriter {
 public:
  /// Adds one named section (names must be unique; checked on write).
  void AddSection(std::string name, std::vector<char> payload);

  /// Serializes all sections to "<path>.tmp" and renames it over `path`.
  /// Returns false (leaving any previous file at `path` untouched) on I/O
  /// failure or duplicate section names. Fault point: "io.checkpoint_write".
  bool WriteAtomic(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::vector<char>>> sections_;
};

/// Opens and fully validates a container: magic, version, section CRCs, and
/// the whole-file CRC. Invalid files yield nullopt and a reason in `*error`.
class CheckpointFileReader {
 public:
  static std::optional<CheckpointFileReader> Open(const std::string& path,
                                                  std::string* error = nullptr);

  /// Section payload by name; nullptr when absent.
  const std::vector<char>* Section(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, std::vector<char>>> sections_;
};

}  // namespace tfmae::util

#endif  // TFMAE_UTIL_CHECKPOINT_FILE_H_
