// Peak-allocation accounting for the Fig. 10 efficiency study.
//
// The tensor library reports every buffer allocation/free here; harnesses
// read current/peak byte counts to mirror the paper's GPU-memory comparison
// with framework-buffer bytes.
#ifndef TFMAE_UTIL_MEMORY_H_
#define TFMAE_UTIL_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace tfmae {

/// Process-wide tensor-buffer byte accounting. All methods are thread-safe.
///
/// These are LOGICAL numbers — exact tensor sizes, alloc on buffer creation
/// and free when the last alias dies — independent of whether the bytes
/// came from the heap or were recycled by the buffer pool (tensor/pool.h).
/// The pool tracks the physical side; this class keeps the Fig. 10
/// footprint comparison truthful under pooling.
class MemoryStats {
 public:
  /// Records an allocation of `bytes`.
  static void RecordAlloc(std::size_t bytes);

  /// Records an allocation of `bytes` for a gradient buffer (counted both
  /// as a regular allocation and in GradAllocCalls).
  static void RecordGradAlloc(std::size_t bytes);

  /// Records a free of `bytes`.
  static void RecordFree(std::size_t bytes);

  /// Bytes currently allocated by tensor buffers.
  static std::int64_t CurrentBytes();

  /// High-water mark since the last ResetPeak().
  static std::int64_t PeakBytes();

  /// Resets the high-water mark to the current usage.
  static void ResetPeak();

  /// Monotone count of buffer allocations (data + grad) since process
  /// start — the logical allocation churn a training step generates.
  static std::int64_t AllocCalls();

  /// Monotone count of gradient-buffer allocations. Stays flat across a
  /// NoGradGuard region: the inference path must never materialize grads.
  static std::int64_t GradAllocCalls();
};

}  // namespace tfmae

#endif  // TFMAE_UTIL_MEMORY_H_
