// Peak-allocation accounting for the Fig. 10 efficiency study.
//
// The tensor library reports every buffer allocation/free here; harnesses
// read current/peak byte counts to mirror the paper's GPU-memory comparison
// with framework-buffer bytes.
#ifndef TFMAE_UTIL_MEMORY_H_
#define TFMAE_UTIL_MEMORY_H_

#include <cstddef>
#include <cstdint>

namespace tfmae {

/// Process-wide tensor-buffer byte accounting. All methods are thread-safe.
class MemoryStats {
 public:
  /// Records an allocation of `bytes`.
  static void RecordAlloc(std::size_t bytes);

  /// Records a free of `bytes`.
  static void RecordFree(std::size_t bytes);

  /// Bytes currently allocated by tensor buffers.
  static std::int64_t CurrentBytes();

  /// High-water mark since the last ResetPeak().
  static std::int64_t PeakBytes();

  /// Resets the high-water mark to the current usage.
  static void ResetPeak();
};

}  // namespace tfmae

#endif  // TFMAE_UTIL_MEMORY_H_
