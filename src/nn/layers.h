// Elementary trainable layers: Linear, LayerNorm, and a two-layer MLP.
#ifndef TFMAE_NN_LAYERS_H_
#define TFMAE_NN_LAYERS_H_

#include <memory>

#include "nn/module.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tfmae::nn {

/// Fully connected layer: y = x W + b, with Xavier-uniform initialization.
class Linear : public Module {
 public:
  /// Creates a layer mapping `in_features` -> `out_features`.
  Linear(std::int64_t in_features, std::int64_t out_features, Rng* rng,
         bool with_bias = true);

  /// x: [M, in_features] -> [M, out_features].
  Tensor Forward(const Tensor& x) const;

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

  /// Parameter accessors for callers that fuse this layer with its consumer
  /// (e.g. FeedForward's fused bias+GELU path).
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  std::int64_t in_features_;
  std::int64_t out_features_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out] or undefined
};

/// Layer normalization over the last dimension with learnable gain/offset.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t features, float eps = 1e-5f);

  Tensor Forward(const Tensor& x) const;

 private:
  Tensor gamma_;
  Tensor beta_;
  float eps_;
};

/// Activation choice for FeedForward.
enum class Activation { kRelu, kGelu };

/// Position-wise feed-forward network: Linear -> activation -> Linear.
class FeedForward : public Module {
 public:
  FeedForward(std::int64_t model_dim, std::int64_t hidden_dim, Rng* rng,
              Activation activation = Activation::kGelu);

  Tensor Forward(const Tensor& x) const;

 private:
  Linear fc1_;
  Linear fc2_;
  Activation activation_;
};

}  // namespace tfmae::nn

#endif  // TFMAE_NN_LAYERS_H_
