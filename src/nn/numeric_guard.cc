#include "nn/numeric_guard.h"

#include <cmath>
#include <cstring>

#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace tfmae::nn {

double GlobalGradNorm(const std::vector<Tensor>& parameters) {
  double sq = 0.0;
  for (const Tensor& p : parameters) {
    const float* g = p.grad_data();
    if (g == nullptr) continue;
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      if (!std::isfinite(g[i])) return std::nan("");
      sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
    }
  }
  return std::sqrt(sq);
}

NumericGuard::NumericGuard(Adam* optimizer, NumericGuardOptions options)
    : optimizer_(optimizer), options_(options) {
  TFMAE_CHECK(optimizer != nullptr);
  // Register the counters up front so a healthy run's dump shows them at 0
  // (absent keys would read as "not monitored", not "no incidents").
  TFMAE_COUNTER_ADD("train.numeric.nonfinite_loss", 0);
  TFMAE_COUNTER_ADD("train.numeric.nonfinite_grad", 0);
  TFMAE_COUNTER_ADD("train.numeric.skipped_steps", 0);
  TFMAE_COUNTER_ADD("train.numeric.lr_backoffs", 0);
  TFMAE_COUNTER_ADD("train.numeric.restores", 0);
  if (options_.enabled) Snapshot();
}

bool NumericGuard::PreStep(float loss_value) {
  if (!options_.enabled) return true;
  if (gave_up_) return false;
  TFMAE_TRACE("train.numeric.guard");

  bool healthy = true;
  const char* trip_kind = nullptr;
  if (!std::isfinite(loss_value)) {
    ++stats_.nonfinite_loss;
    TFMAE_COUNTER_ADD("train.numeric.nonfinite_loss", 1);
    trip_kind = "nonfinite_loss";
    healthy = false;
  }
  if (healthy && !std::isfinite(GlobalGradNorm(optimizer_->parameters()))) {
    ++stats_.nonfinite_grad;
    TFMAE_COUNTER_ADD("train.numeric.nonfinite_grad", 1);
    trip_kind = "nonfinite_grad";
    healthy = false;
  }
  if (healthy) {
    consecutive_skips_ = 0;
    return true;
  }

  ++stats_.skipped_steps;
  TFMAE_COUNTER_ADD("train.numeric.skipped_steps", 1);
  Restore();
  const float backed_off =
      optimizer_->options().learning_rate * options_.lr_backoff;
  if (backed_off >= options_.lr_min) {
    optimizer_->set_learning_rate(backed_off);
    ++stats_.lr_backoffs;
    TFMAE_COUNTER_ADD("train.numeric.lr_backoffs", 1);
  }
  if (obs::LedgerActive()) {
    obs::Ledger::Instance().GuardTrip(
        committed_steps_, trip_kind, loss_value,
        static_cast<double>(optimizer_->options().learning_rate));
  }
  if (obs::FlightRecorderActive()) {
    obs::FlightRecorder::Instance().Note(
        "guard", std::string(trip_kind) + " at committed step " +
                     std::to_string(committed_steps_));
  }
  if (++consecutive_skips_ > options_.max_consecutive_skips) {
    gave_up_ = true;
    if (obs::LedgerActive()) {
      obs::Ledger::Instance().GuardGiveUp(committed_steps_,
                                          consecutive_skips_);
    }
    if (obs::FlightRecorderActive()) {
      obs::FlightRecorder::Instance().Note(
          "guard", "give_up after " + std::to_string(consecutive_skips_) +
                       " consecutive skips");
    }
    Log(LogLevel::kError,
        "numeric guard: " + std::to_string(consecutive_skips_) +
            " consecutive blown steps — giving up; model left at the last "
            "good snapshot");
  } else {
    Log(LogLevel::kWarning,
        "numeric guard: blown step skipped (lr now " +
            std::to_string(optimizer_->options().learning_rate) + ")");
  }
  return false;
}

void NumericGuard::CommitGoodStep() {
  ++committed_steps_;
  if (!options_.enabled) return;
  Snapshot();
}

void NumericGuard::Snapshot() {
  const std::vector<Tensor>& parameters = optimizer_->parameters();
  weight_snapshot_.resize(parameters.size());
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    const Tensor& p = parameters[i];
    weight_snapshot_[i].resize(static_cast<std::size_t>(p.numel()));
    std::memcpy(weight_snapshot_[i].data(), p.data(),
                weight_snapshot_[i].size() * sizeof(float));
  }
  adam_snapshot_ = optimizer_->ExportState();
}

void NumericGuard::Restore() {
  ++stats_.restores;
  TFMAE_COUNTER_ADD("train.numeric.restores", 1);
  const std::vector<Tensor>& parameters = optimizer_->parameters();
  for (std::size_t i = 0; i < parameters.size(); ++i) {
    Tensor p = parameters[i];  // handle copy; shares the underlying buffer
    std::memcpy(p.data(), weight_snapshot_[i].data(),
                weight_snapshot_[i].size() * sizeof(float));
  }
  TFMAE_CHECK(optimizer_->ImportState(adam_snapshot_));
}

}  // namespace tfmae::nn
