// Multi-head scaled dot-product self-attention (paper Eq. (12)).
#ifndef TFMAE_NN_ATTENTION_H_
#define TFMAE_NN_ATTENTION_H_

#include "nn/layers.h"
#include "nn/module.h"

namespace tfmae::nn {

/// Multi-head self-attention over a single sequence [T, D].
///
/// The query/key/value projections and the output projection are learned;
/// attention weights are softmax(Q K^T / sqrt(D_head)) per head, exactly the
/// vanilla-Transformer formulation the paper adopts.
class MultiHeadSelfAttention : public Module {
 public:
  /// model_dim must be divisible by num_heads.
  MultiHeadSelfAttention(std::int64_t model_dim, std::int64_t num_heads,
                         Rng* rng);

  /// x: [T, model_dim] -> [T, model_dim].
  Tensor Forward(const Tensor& x) const;

  /// Like Forward, but also returns the attention weights (softmax rows)
  /// as a [num_heads, T, T] tensor through `weights`. Used by detectors that
  /// operate on association structure (e.g. the AnomalyTransformer
  /// baseline's series association).
  Tensor ForwardWithWeights(const Tensor& x, Tensor* weights) const;

  std::int64_t num_heads() const { return num_heads_; }

 private:
  std::int64_t model_dim_;
  std::int64_t num_heads_;
  std::int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

}  // namespace tfmae::nn

#endif  // TFMAE_NN_ATTENTION_H_
