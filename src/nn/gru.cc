#include "nn/gru.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace tfmae::nn {

GruLayer::GruLayer(std::int64_t input_dim, std::int64_t hidden_dim, Rng* rng)
    : input_dim_(input_dim),
      hidden_dim_(hidden_dim),
      input_gates_(input_dim, 3 * hidden_dim, rng),
      hidden_zr_(hidden_dim, 2 * hidden_dim, rng, /*with_bias=*/false),
      hidden_c_(hidden_dim, hidden_dim, rng, /*with_bias=*/false) {
  RegisterModule("input_gates", &input_gates_);
  RegisterModule("hidden_zr", &hidden_zr_);
  RegisterModule("hidden_c", &hidden_c_);
}

Tensor GruLayer::Step(const Tensor& x_t, const Tensor& h) const {
  TFMAE_CHECK(x_t.rank() == 2 && x_t.dim(1) == input_dim_);
  // Pre-activations from the input, split into the three gate blocks.
  Tensor from_input = input_gates_.Forward(x_t);  // [1, 3H]
  Tensor zx = ops::SliceRows(ops::Transpose2(from_input), 0, hidden_dim_);
  Tensor rx = ops::SliceRows(ops::Transpose2(from_input), hidden_dim_,
                             hidden_dim_);
  Tensor cx = ops::SliceRows(ops::Transpose2(from_input), 2 * hidden_dim_,
                             hidden_dim_);
  // Hidden contributions for z and r.
  Tensor from_hidden = hidden_zr_.Forward(h);  // [1, 2H]
  Tensor zh = ops::SliceRows(ops::Transpose2(from_hidden), 0, hidden_dim_);
  Tensor rh = ops::SliceRows(ops::Transpose2(from_hidden), hidden_dim_,
                             hidden_dim_);

  Tensor z = ops::Sigmoid(ops::Transpose2(ops::Add(zx, zh)));  // [1, H]
  Tensor r = ops::Sigmoid(ops::Transpose2(ops::Add(rx, rh)));
  Tensor candidate = ops::Tanh(ops::Add(
      ops::Transpose2(cx), hidden_c_.Forward(ops::Mul(r, h))));
  // h' = (1 - z) ⊙ h + z ⊙ c.
  Tensor keep = ops::Mul(ops::AddScalar(ops::Neg(z), 1.0f), h);
  return ops::Add(keep, ops::Mul(z, candidate));
}

Tensor GruLayer::Forward(const Tensor& x) const {
  TFMAE_CHECK_MSG(x.rank() == 2 && x.dim(1) == input_dim_,
                  "GRU input must be [T, " << input_dim_ << "], got "
                                           << ShapeToString(x.shape()));
  const std::int64_t t_len = x.dim(0);
  Tensor h = Tensor::Zeros({1, hidden_dim_});
  Tensor outputs;
  for (std::int64_t t = 0; t < t_len; ++t) {
    Tensor x_t = ops::SliceRows(x, t, 1);
    h = Step(x_t, h);
    outputs = t == 0 ? h : ops::ConcatRows(outputs, h);
  }
  return outputs;
}

}  // namespace tfmae::nn
