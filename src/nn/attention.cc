#include "nn/attention.h"

#include <cmath>

#include "obs/trace.h"
#include "util/logging.h"

namespace tfmae::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(std::int64_t model_dim,
                                               std::int64_t num_heads,
                                               Rng* rng)
    : model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      wq_(model_dim, model_dim, rng),
      wk_(model_dim, model_dim, rng),
      wv_(model_dim, model_dim, rng),
      wo_(model_dim, model_dim, rng) {
  TFMAE_CHECK_MSG(model_dim % num_heads == 0,
                  "model_dim " << model_dim << " not divisible by "
                               << num_heads << " heads");
  RegisterModule("wq", &wq_);
  RegisterModule("wk", &wk_);
  RegisterModule("wv", &wv_);
  RegisterModule("wo", &wo_);
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x) const {
  return ForwardWithWeights(x, nullptr);
}

Tensor MultiHeadSelfAttention::ForwardWithWeights(const Tensor& x,
                                                  Tensor* weights_out) const {
  TFMAE_CHECK_MSG(x.rank() == 2 && x.dim(1) == model_dim_,
                  "attention input must be [T, " << model_dim_ << "], got "
                                                 << ShapeToString(x.shape()));
  TFMAE_TRACE("nn.attention.fwd");
  const std::int64_t t_len = x.dim(0);

  // Project and split into heads: [T, D] -> [H, T, Dh].
  auto split_heads = [&](const Tensor& proj) {
    Tensor reshaped = ops::Reshape(proj, {t_len, num_heads_, head_dim_});
    return ops::Permute3(reshaped, {1, 0, 2});
  };
  Tensor q = split_heads(wq_.Forward(x));
  Tensor k = split_heads(wk_.Forward(x));
  Tensor v = split_heads(wv_.Forward(x));

  // Attention weights: softmax over keys of Q K^T / sqrt(Dh). The batched
  // Bt kernel consumes K as [H, T, Dh] directly — no Permute3 node, and the
  // fused scale+softmax skips the scaled-scores intermediate (bit-identical
  // to Softmax(Scale(scores))).
  Tensor scores = ops::BatchedMatMulBt(q, k);  // [H, T, T]
  Tensor weights = ops::ScaleSoftmax(
      scores, 1.0f / std::sqrt(static_cast<float>(head_dim_)));
  if (weights_out != nullptr) *weights_out = weights;

  // Weighted values, merge heads back: [H, T, Dh] -> [T, D].
  Tensor context = ops::BatchedMatMul(weights, v);
  context = ops::Permute3(context, {1, 0, 2});  // [T, H, Dh]
  context = ops::Reshape(context, {t_len, model_dim_});
  return wo_.Forward(context);
}

}  // namespace tfmae::nn
