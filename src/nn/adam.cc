#include "nn/adam.h"

#include <cmath>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tfmae::nn {

namespace {

// Fixed chunking for the fused update: each element's arithmetic is
// independent, so any chunk boundaries give bit-identical results — but fixed
// ones keep the dispatch shape stable across thread counts.
constexpr std::int64_t kAdamGrain = 1 << 14;
constexpr std::int64_t kAdamParallelThreshold = 1 << 15;

// Fused Adam element update: both moment updates, bias correction, and the
// parameter write in one pass over [s, e). Exactly the arithmetic of the
// classic four-expression form, in the same order.
void AdamUpdateRange(float* w, float* m, float* v, const float* g,
                     std::int64_t s, std::int64_t e, float scale, float lr,
                     float b1, float b2, float bias1, float bias2, float eps) {
  for (std::int64_t i = s; i < e; ++i) {
    const float grad = g[i] * scale;
    m[i] = b1 * m[i] + (1.0f - b1) * grad;
    v[i] = b2 * v[i] + (1.0f - b2) * grad * grad;
    const float m_hat = m[i] / bias1;
    const float v_hat = v[i] / bias2;
    w[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace

Adam::Adam(std::vector<Tensor> parameters, AdamOptions options)
    : parameters_(std::move(parameters)), options_(options) {
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (const Tensor& p : parameters_) {
    TFMAE_CHECK(p.defined());
    m_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
  }
}

void Adam::Step() {
  TFMAE_TRACE("nn.adam.step");
  TFMAE_COUNTER_ADD("nn.adam.steps", 1);
  ++step_count_;
  const float lr = options_.learning_rate;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 =
      1.0f - std::pow(b1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(b2, static_cast<float>(step_count_));

  // Optional global-norm clipping across all parameters.
  float scale = 1.0f;
  if (options_.clip_grad_norm > 0.0f) {
    double sq = 0.0;
    for (const Tensor& p : parameters_) {
      const float* g = p.grad_data();
      if (g == nullptr) continue;
      for (std::int64_t i = 0; i < p.numel(); ++i) {
        sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_grad_norm) {
      scale = static_cast<float>(options_.clip_grad_norm / (norm + 1e-12));
    }
  }

  const float eps = options_.eps;
  for (std::size_t pi = 0; pi < parameters_.size(); ++pi) {
    Tensor& p = parameters_[pi];
    const float* g = p.grad_data();
    if (g == nullptr) continue;
    float* w = p.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const std::int64_t n = p.numel();
    if (n < kAdamParallelThreshold) {
      AdamUpdateRange(w, m, v, g, 0, n, scale, lr, b1, b2, bias1, bias2, eps);
    } else {
      ParallelFor(0, n, kAdamGrain, [=](std::int64_t s, std::int64_t e) {
        AdamUpdateRange(w, m, v, g, s, e, scale, lr, b1, b2, bias1, bias2,
                        eps);
      });
    }
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.step_count = step_count_;
  state.m = m_;
  state.v = v_;
  return state;
}

bool Adam::ImportState(const AdamState& state) {
  if (state.m.size() != m_.size() || state.v.size() != v_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < m_.size(); ++i) {
    if (state.m[i].size() != m_[i].size() ||
        state.v[i].size() != v_[i].size()) {
      return false;
    }
  }
  step_count_ = state.step_count;
  m_ = state.m;
  v_ = state.v;
  return true;
}

void Adam::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

}  // namespace tfmae::nn
