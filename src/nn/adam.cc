#include "nn/adam.h"

#include <cmath>

#include "obs/trace.h"
#include "util/logging.h"

namespace tfmae::nn {

Adam::Adam(std::vector<Tensor> parameters, AdamOptions options)
    : parameters_(std::move(parameters)), options_(options) {
  m_.reserve(parameters_.size());
  v_.reserve(parameters_.size());
  for (const Tensor& p : parameters_) {
    TFMAE_CHECK(p.defined());
    m_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
  }
}

void Adam::Step() {
  TFMAE_TRACE("nn.adam.step");
  TFMAE_COUNTER_ADD("nn.adam.steps", 1);
  ++step_count_;
  const float lr = options_.learning_rate;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float bias1 =
      1.0f - std::pow(b1, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(b2, static_cast<float>(step_count_));

  // Optional global-norm clipping across all parameters.
  float scale = 1.0f;
  if (options_.clip_grad_norm > 0.0f) {
    double sq = 0.0;
    for (const Tensor& p : parameters_) {
      const float* g = p.grad_data();
      if (g == nullptr) continue;
      for (std::int64_t i = 0; i < p.numel(); ++i) {
        sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
      }
    }
    const double norm = std::sqrt(sq);
    if (norm > options_.clip_grad_norm) {
      scale = static_cast<float>(options_.clip_grad_norm / (norm + 1e-12));
    }
  }

  for (std::size_t pi = 0; pi < parameters_.size(); ++pi) {
    Tensor& p = parameters_[pi];
    const float* g = p.grad_data();
    if (g == nullptr) continue;
    float* w = p.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const std::int64_t n = p.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      const float grad = g[i] * scale;
      m[i] = b1 * m[i] + (1.0f - b1) * grad;
      v[i] = b2 * v[i] + (1.0f - b2) * grad * grad;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      w[i] -= lr * m_hat / (std::sqrt(v_hat) + options_.eps);
    }
  }
}

void Adam::ZeroGrad() {
  for (Tensor& p : parameters_) p.ZeroGrad();
}

}  // namespace tfmae::nn
