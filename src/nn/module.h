// Module base class: a named-parameter registry with recursive traversal,
// mirroring the torch.nn.Module idiom the paper's reference implementation
// builds on.
#ifndef TFMAE_NN_MODULE_H_
#define TFMAE_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace tfmae::nn {

/// Base class for trainable components. Subclasses register parameters and
/// child modules in their constructors; optimizers and serialization then
/// reach every trainable tensor through Parameters()/NamedParameters().
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable tensors of this module and its children (registration
  /// order; children after own parameters).
  std::vector<Tensor> Parameters() const;

  /// Parameters with hierarchical dotted names, e.g. "encoder.0.attn.wq".
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Zeroes the gradient buffers of every parameter.
  void ZeroGrad();

  /// Total number of trainable scalars.
  std::int64_t NumParameters() const;

 protected:
  /// Registers a trainable tensor under `name`, marks it requires-grad, and
  /// returns it for storage in the subclass.
  Tensor RegisterParameter(const std::string& name, Tensor value);

  /// Registers a child module. The child must outlive this module (typical
  /// usage: the child is a data member of the subclass).
  void RegisterModule(const std::string& name, Module* child);

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace tfmae::nn

#endif  // TFMAE_NN_MODULE_H_
