// Transformer building blocks (paper Eq. (11)-(13)): sinusoidal positional
// encoding, a post-norm attention layer, and an L-layer stack usable as
// either the encoder or the decoder of TFMAE's autoencoders (the paper's
// "decoder" is the same self-attention stack applied to the full sequence).
#ifndef TFMAE_NN_TRANSFORMER_H_
#define TFMAE_NN_TRANSFORMER_H_

#include <memory>
#include <vector>

#include "nn/attention.h"
#include "nn/layers.h"

namespace tfmae::nn {

/// Sinusoidal positional encoding table (paper Eq. (11)).
/// Returns a constant [length, dim] tensor; row t holds
/// sin(t/10000^{i/D}) for even i and cos(t/10000^{(i-1)/D}) for odd i.
Tensor SinusoidalPositionalEncoding(std::int64_t length, std::int64_t dim);

/// Adds positional encoding rows `positions` to x (x: [|positions|, D]).
/// Used to decorate mask tokens with the location of the masked observation.
Tensor AddPositionalEncoding(const Tensor& x,
                             const std::vector<std::int64_t>& positions);

/// One post-norm Transformer layer: x -> LN(x + Attn(x)) -> LN(· + FFN(·)).
class TransformerLayer : public Module {
 public:
  TransformerLayer(std::int64_t model_dim, std::int64_t num_heads,
                   std::int64_t ff_hidden_dim, Rng* rng);

  Tensor Forward(const Tensor& x) const;

 private:
  MultiHeadSelfAttention attention_;
  FeedForward feed_forward_;
  LayerNorm norm1_;
  LayerNorm norm2_;
};

/// An L-layer Transformer stack over [T, D] sequences.
class TransformerStack : public Module {
 public:
  TransformerStack(std::int64_t num_layers, std::int64_t model_dim,
                   std::int64_t num_heads, std::int64_t ff_hidden_dim,
                   Rng* rng);

  /// Applies all layers in order.
  Tensor Forward(const Tensor& x) const;

  std::int64_t num_layers() const {
    return static_cast<std::int64_t>(layers_.size());
  }

 private:
  std::vector<std::unique_ptr<TransformerLayer>> layers_;
};

}  // namespace tfmae::nn

#endif  // TFMAE_NN_TRANSFORMER_H_
