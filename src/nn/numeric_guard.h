// Numeric-health guard for the training step (docs/RESILIENCE.md).
//
// A NaN or Inf that slips through one optimizer step silently corrupts
// every later step: the moments keep the poison and the model never
// recovers. The guard sits between backward() and optimizer->Step():
//
//   loss.Backward();
//   if (guard.PreStep(loss_value)) {   // loss and grad norm finite?
//     optimizer->Step();
//     guard.CommitGoodStep();          // snapshot weights + moments
//   }                                  // else: skipped, restored, LR backed off
//
// On a blown step the guard (a) reports the step as unhealthy so the caller
// skips the update and zeroes the gradients, (b) restores parameters and
// optimizer moments from the last good in-memory snapshot — insurance
// against poison that has already landed, (c) multiplies the learning rate
// by `lr_backoff` down to `lr_min` (loss spikes are usually step-size
// accidents), and (d) bumps the `train.numeric.*` counters so recovery is
// visible in metrics dumps, not just implied by a healthy loss curve.
//
// A healthy run pays one finiteness sweep over the gradients plus one
// weight/moment copy per step; the guard never perturbs arithmetic, so
// guarded and unguarded healthy runs are bitwise-identical.
//
// After `max_consecutive_skips` blown steps in a row the guard gives up:
// PreStep keeps returning false and `gave_up()` turns true, leaving the
// caller with the last good weights instead of looping forever on a
// permanently poisoned input.
#ifndef TFMAE_NN_NUMERIC_GUARD_H_
#define TFMAE_NN_NUMERIC_GUARD_H_

#include <cstdint>
#include <vector>

#include "nn/adam.h"
#include "tensor/tensor.h"

namespace tfmae::nn {

/// Global L2 norm of the gradients currently on `parameters`, accumulated in
/// double like Adam's own clipping pass. Returns NaN as soon as any element
/// is non-finite (a plain sum would hide a lone NaN behind an Inf). Shared
/// by the guard's health check and the run ledger's per-step record.
double GlobalGradNorm(const std::vector<Tensor>& parameters);

struct NumericGuardOptions {
  bool enabled = true;
  float lr_backoff = 0.5f;  ///< LR multiplier applied per blown step
  float lr_min = 1e-7f;     ///< LR floor for the backoff
  int max_consecutive_skips = 25;  ///< give up after this many in a row
};

/// Counts of every intervention since construction. Mirrored into the
/// metrics registry under `train.numeric.*` (obs builds).
struct NumericGuardStats {
  std::int64_t nonfinite_loss = 0;   ///< steps with a NaN/Inf loss value
  std::int64_t nonfinite_grad = 0;   ///< steps with a NaN/Inf gradient norm
  std::int64_t skipped_steps = 0;    ///< updates suppressed (either cause)
  std::int64_t restores = 0;         ///< snapshot restorations performed
  std::int64_t lr_backoffs = 0;      ///< learning-rate reductions applied
};

class NumericGuard {
 public:
  /// `optimizer` must outlive the guard and manage exactly the parameters
  /// whose health is being guarded. The initial snapshot is taken here.
  NumericGuard(Adam* optimizer, NumericGuardOptions options = {});

  /// Health check for the step about to be applied. Returns true when
  /// `loss_value` and the global gradient norm are finite (apply the step,
  /// then call CommitGoodStep). Returns false after skipping/restoring as
  /// documented above — the caller must NOT apply the step and should zero
  /// the gradients. Always true when the guard is disabled.
  bool PreStep(float loss_value);

  /// Records the post-step state as the new last-good snapshot.
  void CommitGoodStep();

  /// True once max_consecutive_skips was exceeded; training should stop.
  bool gave_up() const { return gave_up_; }

  const NumericGuardStats& stats() const { return stats_; }

 private:
  void Snapshot();
  void Restore();

  Adam* optimizer_;
  NumericGuardOptions options_;
  NumericGuardStats stats_;
  std::vector<std::vector<float>> weight_snapshot_;
  AdamState adam_snapshot_;
  int consecutive_skips_ = 0;
  // Steps the caller committed so far — the step id of ledger guard events
  // (thread-count-invariant, unlike any wall-clock notion of progress).
  std::int64_t committed_steps_ = 0;
  bool gave_up_ = false;
};

}  // namespace tfmae::nn

#endif  // TFMAE_NN_NUMERIC_GUARD_H_
