#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>

#include "util/logging.h"

namespace tfmae::nn {
namespace {
constexpr char kMagic[8] = {'T', 'F', 'M', 'A', 'E', 'w', 't', 's'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

bool SaveParameters(const Module& module, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const auto named = module.NamedParameters();
  file.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  file.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t count = named.size();
  file.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [name, tensor] : named) {
    const std::uint32_t name_len = static_cast<std::uint32_t>(name.size());
    file.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    file.write(name.data(), static_cast<std::streamsize>(name.size()));
    const std::uint64_t numel = static_cast<std::uint64_t>(tensor.numel());
    file.write(reinterpret_cast<const char*>(&numel), sizeof(numel));
    file.write(reinterpret_cast<const char*>(tensor.data()),
               static_cast<std::streamsize>(numel * sizeof(float)));
  }
  return static_cast<bool>(file);
}

bool LoadParameters(Module* module, const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return false;
  char magic[8];
  file.read(magic, sizeof(magic));
  if (!file || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  std::uint32_t version = 0;
  file.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!file || version != kVersion) return false;
  std::uint64_t count = 0;
  file.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!file) return false;

  std::map<std::string, std::vector<float>> loaded;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    file.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    if (!file) return false;
    std::string name(name_len, '\0');
    file.read(name.data(), name_len);
    std::uint64_t numel = 0;
    file.read(reinterpret_cast<char*>(&numel), sizeof(numel));
    if (!file) return false;
    std::vector<float> values(numel);
    file.read(reinterpret_cast<char*>(values.data()),
              static_cast<std::streamsize>(numel * sizeof(float)));
    if (!file) return false;
    loaded.emplace(std::move(name), std::move(values));
  }

  for (auto& [name, tensor] : module->NamedParameters()) {
    auto it = loaded.find(name);
    if (it == loaded.end()) return false;
    if (static_cast<std::int64_t>(it->second.size()) != tensor.numel()) {
      return false;
    }
    std::memcpy(tensor.data(), it->second.data(),
                it->second.size() * sizeof(float));
  }
  return true;
}

}  // namespace tfmae::nn
