#include "nn/serialize.h"

#include <cstring>
#include <map>

#include "util/checkpoint_file.h"

namespace tfmae::nn {

std::vector<char> EncodeParameters(const Module& module) {
  util::ByteWriter writer;
  const auto named = module.NamedParameters();
  writer.U64(named.size());
  for (const auto& [name, tensor] : named) {
    writer.String(name);
    writer.U64(static_cast<std::uint64_t>(tensor.numel()));
    writer.Raw(tensor.data(),
               static_cast<std::size_t>(tensor.numel()) * sizeof(float));
  }
  return writer.Take();
}

bool DecodeParameters(Module* module, const std::vector<char>& payload) {
  util::ByteReader reader(payload);
  std::uint64_t count = 0;
  if (!reader.U64(&count)) return false;

  // Stage everything first so a mismatch part-way through cannot leave the
  // module half-overwritten.
  std::map<std::string, std::vector<float>> loaded;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name;
    std::uint64_t numel = 0;
    if (!reader.String(&name) || !reader.U64(&numel)) return false;
    std::vector<float> values(static_cast<std::size_t>(numel));
    if (!reader.Raw(values.data(), values.size() * sizeof(float))) {
      return false;
    }
    loaded.emplace(std::move(name), std::move(values));
  }
  if (!reader.AtEnd()) return false;

  const auto named = module->NamedParameters();
  for (const auto& [name, tensor] : named) {
    auto it = loaded.find(name);
    if (it == loaded.end() ||
        static_cast<std::int64_t>(it->second.size()) != tensor.numel()) {
      return false;
    }
  }
  for (auto& [name, tensor] : module->NamedParameters()) {
    const auto& values = loaded.at(name);
    std::memcpy(tensor.data(), values.data(), values.size() * sizeof(float));
  }
  return true;
}

bool SaveParameters(const Module& module, const std::string& path) {
  util::CheckpointFileWriter writer;
  writer.AddSection(kParametersSection, EncodeParameters(module));
  return writer.WriteAtomic(path);
}

bool LoadParameters(Module* module, const std::string& path) {
  const auto reader = util::CheckpointFileReader::Open(path);
  if (!reader.has_value()) return false;
  const std::vector<char>* payload = reader->Section(kParametersSection);
  if (payload == nullptr) return false;
  return DecodeParameters(module, *payload);
}

}  // namespace tfmae::nn
