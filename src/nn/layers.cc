#include "nn/layers.h"

#include <cmath>

namespace tfmae::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng* rng,
               bool with_bias)
    : in_features_(in_features), out_features_(out_features) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight_ = RegisterParameter(
      "weight", Tensor::Rand({in_features, out_features}, rng, -bound, bound));
  if (with_bias) {
    bias_ = RegisterParameter("bias", Tensor::Zeros({out_features}));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  return ops::Linear(x, weight_, bias_);
}

LayerNorm::LayerNorm(std::int64_t features, float eps) : eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor::Full({features}, 1.0f));
  beta_ = RegisterParameter("beta", Tensor::Zeros({features}));
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  return ops::LayerNormOp(x, gamma_, beta_, eps_);
}

FeedForward::FeedForward(std::int64_t model_dim, std::int64_t hidden_dim,
                         Rng* rng, Activation activation)
    : fc1_(model_dim, hidden_dim, rng),
      fc2_(hidden_dim, model_dim, rng),
      activation_(activation) {
  RegisterModule("fc1", &fc1_);
  RegisterModule("fc2", &fc2_);
}

Tensor FeedForward::Forward(const Tensor& x) const {
  if (activation_ == Activation::kGelu && fc1_.bias().defined()) {
    // Fused bias+GELU: one graph node and no intermediate pre-activation
    // tensor; bit-identical to Gelu(fc1(x)).
    Tensor hidden = ops::BiasGelu(ops::MatMul(x, fc1_.weight()), fc1_.bias());
    return fc2_.Forward(hidden);
  }
  Tensor hidden = fc1_.Forward(x);
  hidden = activation_ == Activation::kGelu ? ops::Gelu(hidden)
                                            : ops::Relu(hidden);
  return fc2_.Forward(hidden);
}

}  // namespace tfmae::nn
