#include "nn/module.h"

#include "util/logging.h"

namespace tfmae::nn {

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, tensor] : params_) out.push_back(tensor);
  for (const auto& [name, child] : children_) {
    for (Tensor& t : child->Parameters()) out.push_back(std::move(t));
  }
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& entry : params_) out.push_back(entry);
  for (const auto& [child_name, child] : children_) {
    for (auto& [name, tensor] : child->NamedParameters()) {
      out.emplace_back(child_name + "." + name, tensor);
    }
  }
  return out;
}

void Module::ZeroGrad() {
  for (Tensor& t : Parameters()) t.ZeroGrad();
}

std::int64_t Module::NumParameters() const {
  std::int64_t total = 0;
  for (const Tensor& t : Parameters()) total += t.numel();
  return total;
}

Tensor Module::RegisterParameter(const std::string& name, Tensor value) {
  TFMAE_CHECK_MSG(value.defined(), "parameter '" << name << "' is undefined");
  value.set_requires_grad(true);
  params_.emplace_back(name, value);
  return value;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  TFMAE_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

}  // namespace tfmae::nn
