// Gated recurrent units (Cho et al., 2014), the recurrent substrate for the
// OmniAnomaly-style baseline (stochastic RNN reconstruction family).
#ifndef TFMAE_NN_GRU_H_
#define TFMAE_NN_GRU_H_

#include "nn/layers.h"
#include "nn/module.h"

namespace tfmae::nn {

/// A single-layer GRU applied over a [T, input_dim] sequence, producing the
/// full hidden-state sequence [T, hidden_dim]. The initial state is zero.
///
/// Gates (per step t):
///   z_t = sigmoid(x_t Wz + h_{t-1} Uz + bz)
///   r_t = sigmoid(x_t Wr + h_{t-1} Ur + br)
///   c_t = tanh  (x_t Wc + (r_t ⊙ h_{t-1}) Uc + bc)
///   h_t = (1 - z_t) ⊙ h_{t-1} + z_t ⊙ c_t
class GruLayer : public Module {
 public:
  GruLayer(std::int64_t input_dim, std::int64_t hidden_dim, Rng* rng);

  /// x: [T, input_dim] -> hidden states [T, hidden_dim].
  Tensor Forward(const Tensor& x) const;

  /// One step: x_t [1, input_dim], h [1, hidden_dim] -> new h.
  Tensor Step(const Tensor& x_t, const Tensor& h) const;

  std::int64_t hidden_dim() const { return hidden_dim_; }

 private:
  std::int64_t input_dim_;
  std::int64_t hidden_dim_;
  Linear input_gates_;   // x -> [z | r | c] pre-activations, 3*hidden
  Linear hidden_zr_;     // h -> [z | r] pre-activations, 2*hidden (no bias)
  Linear hidden_c_;      // (r ⊙ h) -> c pre-activation (no bias)
};

}  // namespace tfmae::nn

#endif  // TFMAE_NN_GRU_H_
