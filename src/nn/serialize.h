// Binary checkpointing of module parameters.
//
// Format: magic "TFMAEwts", u32 version, u64 count, then for each parameter
// { u32 name length, name bytes, u64 numel, numel float32 values }.
// Loading matches by name and CHECK-fails on shape mismatch, so checkpoints
// are portable across runs of the same architecture.
#ifndef TFMAE_NN_SERIALIZE_H_
#define TFMAE_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"

namespace tfmae::nn {

/// Writes all named parameters of `module` to `path`.
/// Returns false on I/O failure.
bool SaveParameters(const Module& module, const std::string& path);

/// Loads a checkpoint written by SaveParameters into `module`.
/// Every parameter in the module must be present in the file with a matching
/// element count. Returns false on I/O or format failure.
bool LoadParameters(Module* module, const std::string& path);

}  // namespace tfmae::nn

#endif  // TFMAE_NN_SERIALIZE_H_
