// Crash-safe checkpointing of module parameters.
//
// Weights persist inside the CRC-checked sectioned container of
// util/checkpoint_file.h (magic "TFMAECKP"): SaveParameters writes one
// "params" section and commits it with an atomic temp-file+rename, so a
// crash mid-save can never tear an existing checkpoint, and LoadParameters
// rejects truncated, bit-flipped, wrong-magic, and wrong-version files as a
// unit (docs/RESILIENCE.md).
//
// The section payload is exposed as a byte-level Encode/Decode pair so the
// full TrainingCheckpoint bundle (core/checkpoint.h) can embed weights next
// to optimizer and RNG state in a single atomic file.
//
// Payload layout: u64 count, then per parameter { string name, u64 numel,
// numel float32 values }. Loading matches by name and fails (returns false)
// on any missing parameter or element-count mismatch, so checkpoints are
// portable only across runs of the same architecture.
#ifndef TFMAE_NN_SERIALIZE_H_
#define TFMAE_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/module.h"

namespace tfmae::nn {

/// Section name under which SaveParameters stores the weight payload.
inline constexpr char kParametersSection[] = "params";

/// Serializes all named parameters of `module` into a byte payload.
std::vector<char> EncodeParameters(const Module& module);

/// Restores a payload produced by EncodeParameters into `module`. Every
/// parameter of the module must be present with a matching element count;
/// returns false (module unchanged) otherwise.
bool DecodeParameters(Module* module, const std::vector<char>& payload);

/// Writes all named parameters of `module` to `path` (atomic replace).
/// Returns false on I/O failure — any previous file at `path` is kept.
bool SaveParameters(const Module& module, const std::string& path);

/// Loads a checkpoint written by SaveParameters into `module`. Returns
/// false on I/O failure, corruption (checksum/magic/version), or an
/// architecture mismatch.
bool LoadParameters(Module* module, const std::string& path);

}  // namespace tfmae::nn

#endif  // TFMAE_NN_SERIALIZE_H_
