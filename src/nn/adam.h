// Adam optimizer (Kingma & Ba, 2014) with optional global-norm gradient
// clipping. The paper trains TFMAE with Adam at learning rate 1e-4.
#ifndef TFMAE_NN_ADAM_H_
#define TFMAE_NN_ADAM_H_

#include <vector>

#include "tensor/tensor.h"

namespace tfmae::nn {

/// Hyper-parameters for Adam.
struct AdamOptions {
  float learning_rate = 1e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  /// If > 0, gradients are rescaled so their global L2 norm is at most this.
  float clip_grad_norm = 0.0f;
};

/// Complete optimizer state — both moment vectors and the step counter.
/// Persisted inside training checkpoints (core/checkpoint.h) and snapshotted
/// by the numeric guard (nn/numeric_guard.h) so a restored optimizer
/// continues bitwise-identically.
struct AdamState {
  std::int64_t step_count = 0;
  std::vector<std::vector<float>> m;
  std::vector<std::vector<float>> v;
};

/// Adam over a fixed parameter list. Parameters must keep their identity
/// (buffer) across steps; the optimizer stores per-parameter moment buffers.
class Adam {
 public:
  Adam(std::vector<Tensor> parameters, AdamOptions options = {});

  /// Applies one update from the gradients currently accumulated on the
  /// parameters, then leaves gradients untouched (call ZeroGrad separately).
  /// Parameters whose gradient buffer was never written are skipped.
  void Step();

  /// Zeroes the gradients of all managed parameters.
  void ZeroGrad();

  std::int64_t num_steps() const { return step_count_; }
  const AdamOptions& options() const { return options_; }
  void set_learning_rate(float lr) { options_.learning_rate = lr; }

  /// The managed parameter tensors (aliases, not copies).
  const std::vector<Tensor>& parameters() const { return parameters_; }

  /// Deep copy of the moments and step counter.
  AdamState ExportState() const;

  /// Restores state exported from an optimizer over the same parameter
  /// shapes. Returns false (state unchanged) on a shape mismatch.
  bool ImportState(const AdamState& state);

 private:
  std::vector<Tensor> parameters_;
  AdamOptions options_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  std::int64_t step_count_ = 0;
};

}  // namespace tfmae::nn

#endif  // TFMAE_NN_ADAM_H_
