#include "nn/transformer.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_map>

#include "tensor/capture.h"
#include "util/logging.h"

namespace tfmae::nn {

namespace {

// Process-wide cache of sinusoidal tables keyed by embedding dim, each kept
// at the longest length requested so far. The table is a pure function of
// (length, dim) and a longer table's prefix equals the shorter table, so all
// windows share one high-watermark copy instead of recomputing the
// transcendentals (and reallocating the buffer) every training step.
std::mutex g_pe_mutex;
std::unordered_map<std::int64_t, Tensor>& PeCache() {
  static auto* cache = new std::unordered_map<std::int64_t, Tensor>();
  return *cache;
}

Tensor CachedPositionalEncoding(std::int64_t length, std::int64_t dim) {
  std::lock_guard<std::mutex> lock(g_pe_mutex);
  Tensor& entry = PeCache()[dim];
  if (!entry.defined() || entry.dim(0) < length) {
    entry = SinusoidalPositionalEncoding(length, dim);
  }
  // The returned handle aliases the cached buffer; it stays alive for the
  // caller even if another thread grows (replaces) the entry concurrently.
  return entry;
}

}  // namespace

Tensor SinusoidalPositionalEncoding(std::int64_t length, std::int64_t dim) {
  Tensor pe = Tensor::Empty({length, dim});
  float* p = pe.data();
  for (std::int64_t t = 0; t < length; ++t) {
    for (std::int64_t i = 0; i < dim; ++i) {
      const double exponent =
          static_cast<double>(i % 2 == 0 ? i : i - 1) /
          static_cast<double>(dim);
      const double angle =
          static_cast<double>(t) / std::pow(10000.0, exponent);
      p[t * dim + i] = static_cast<float>(i % 2 == 0 ? std::sin(angle)
                                                     : std::cos(angle));
    }
  }
  return pe;
}

Tensor AddPositionalEncoding(const Tensor& x,
                             const std::vector<std::int64_t>& positions) {
  TFMAE_CHECK(x.rank() == 2 &&
              x.dim(0) == static_cast<std::int64_t>(positions.size()));
  const std::int64_t dim = x.dim(1);
  std::int64_t max_pos = 0;
  for (std::int64_t p : positions) max_pos = std::max(max_pos, p);
  Tensor table = CachedPositionalEncoding(max_pos + 1, dim);
  Tensor rows = Tensor::Empty({static_cast<std::int64_t>(positions.size()),
                               dim});
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const float* src = table.data() + positions[i] * dim;
    float* dst = rows.data() + static_cast<std::int64_t>(i) * dim;
    for (std::int64_t d = 0; d < dim; ++d) dst[d] = src[d];
  }
  if (!GradModeEnabled()) {
    // Inference fast path: fold x into the freshly gathered rows in place
    // (float addition is commutative, so this is bit-identical to Add).
    ops::AddInPlace(&rows, x);
    ops::capture::NotePosEncAdd(x, positions, rows);
    return rows;
  }
  return ops::Add(x, rows);
}

TransformerLayer::TransformerLayer(std::int64_t model_dim,
                                   std::int64_t num_heads,
                                   std::int64_t ff_hidden_dim, Rng* rng)
    : attention_(model_dim, num_heads, rng),
      feed_forward_(model_dim, ff_hidden_dim, rng),
      norm1_(model_dim),
      norm2_(model_dim) {
  RegisterModule("attn", &attention_);
  RegisterModule("ffn", &feed_forward_);
  RegisterModule("norm1", &norm1_);
  RegisterModule("norm2", &norm2_);
}

Tensor TransformerLayer::Forward(const Tensor& x) const {
  // Paper Eq. (13): post-norm residual blocks.
  Tensor attended = attention_.Forward(x);
  Tensor after_attention = norm1_.Forward(ops::Add(x, attended));
  Tensor transformed = feed_forward_.Forward(after_attention);
  return norm2_.Forward(ops::Add(after_attention, transformed));
}

TransformerStack::TransformerStack(std::int64_t num_layers,
                                   std::int64_t model_dim,
                                   std::int64_t num_heads,
                                   std::int64_t ff_hidden_dim, Rng* rng) {
  TFMAE_CHECK(num_layers >= 1);
  layers_.reserve(static_cast<std::size_t>(num_layers));
  for (std::int64_t l = 0; l < num_layers; ++l) {
    layers_.push_back(std::make_unique<TransformerLayer>(
        model_dim, num_heads, ff_hidden_dim, rng));
    RegisterModule("layer" + std::to_string(l), layers_.back().get());
  }
}

Tensor TransformerStack::Forward(const Tensor& x) const {
  Tensor h = x;
  for (const auto& layer : layers_) h = layer->Forward(h);
  return h;
}

}  // namespace tfmae::nn
