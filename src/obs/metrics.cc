#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <mutex>
#include <ostream>

#include "util/logging.h"

namespace tfmae::obs {
namespace {

constexpr std::uint64_t kNoMin = std::numeric_limits<std::uint64_t>::max();

/// Relaxed atomic max over a cell written by many threads (gauges) or read
/// concurrently with single-writer updates (histogram min/max).
void AtomicMaxU64(std::atomic<std::uint64_t>* cell, std::uint64_t value) {
  std::uint64_t cur = cell->load(std::memory_order_relaxed);
  while (cur < value &&
         !cell->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMinU64(std::atomic<std::uint64_t>* cell, std::uint64_t value) {
  std::uint64_t cur = cell->load(std::memory_order_relaxed);
  while (cur > value &&
         !cell->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

int HistogramBucket(std::uint64_t value) {
  // bit_width(v) = floor(log2 v) + 1, so values [2^(b-1), 2^b) land in
  // bucket b and 0 lands in bucket 0.
  return std::min(kHistogramBuckets - 1,
                  static_cast<int>(std::bit_width(value)));
}

std::uint64_t HistogramBucketUpperBound(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << bucket) - 1;
}

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(
      p * static_cast<double>(count - 1));  // 0-based rank of the quantile
  std::uint64_t seen = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) {
      return static_cast<double>(std::min(HistogramBucketUpperBound(b), max));
    }
  }
  return static_cast<double>(max);
}

double HistogramSnapshot::Quantile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(count);
  double seen = 0.0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double next = seen + static_cast<double>(buckets[b]);
    if (next >= target) {
      if (b == 0) return 0.0;  // bucket 0 holds only the value 0
      // Bucket b spans [2^(b-1), 2^b): interpolate log-linearly, i.e.
      // 2^(b-1+f) for the fraction f of the bucket's mass below the target.
      const double f =
          std::clamp((target - seen) / static_cast<double>(buckets[b]), 0.0,
                     1.0);
      const double value = std::ldexp(std::exp2(f), b - 1);
      return std::clamp(value, static_cast<double>(min),
                        static_cast<double>(max));
    }
    seen = next;
  }
  return static_cast<double>(max);
}

std::uint64_t MetricsSnapshot::Counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::Histogram(
    std::string_view name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

/// One thread's private slice of every counter and histogram. Cells are
/// atomics only so the snapshotting thread can read them concurrently; the
/// owning thread is the sole writer, so relaxed ordering suffices (totals
/// are integer sums — exact under any interleaving).
struct Registry::Shard {
  std::atomic<std::uint64_t> counters[kMaxCounters] = {};

  struct Hist {
    std::atomic<std::uint64_t> buckets[kHistogramBuckets] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{kNoMin};
    std::atomic<std::uint64_t> max{0};
  };
  Hist histograms[kMaxHistograms];

  void Zero() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : histograms) {
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      h.min.store(kNoMin, std::memory_order_relaxed);
      h.max.store(0, std::memory_order_relaxed);
    }
  }
};

namespace {

/// Registry-wide mutable state guarded by one mutex. Only the slow paths
/// (registration, shard churn, snapshot, reset) take it.
struct RegistryState {
  RegistryState() {
    // Reserve counter id 0 for the overflow tally so registration overflow
    // is observable even when it is the very thing preventing registration.
    counter_names.emplace_back("obs.registry.overflow");
  }

  std::mutex mu;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> histogram_names;
  std::atomic<std::int64_t> gauges[kMaxGauges] = {};
  /// All shards ever created, in creation order (the merge order).
  std::vector<Registry::Shard*> shards;
  /// Shards whose owning thread exited; contents retained, handed to the
  /// next new thread.
  std::vector<Registry::Shard*> free_shards;
};

RegistryState& State() {
  static RegistryState* state = new RegistryState();  // leaked, see Instance
  return *state;
}

/// Looks up or appends `name`; returns kInvalidMetricId when the table is
/// at `cap`. Caller holds st.mu — the overflow counter bump happens at the
/// call sites AFTER the lock is released (CounterAdd may itself need the
/// lock to acquire a shard).
int RegisterName(std::vector<std::string>* names, std::string_view name,
                 int cap) {
  for (std::size_t i = 0; i < names->size(); ++i) {
    if ((*names)[i] == name) return static_cast<int>(i);
  }
  if (static_cast<int>(names->size()) >= cap) return kInvalidMetricId;
  names->emplace_back(name);
  return static_cast<int>(names->size() - 1);
}

}  // namespace

/// RAII owner of the calling thread's shard: returns it to the free list at
/// thread exit so thread churn (pool resizing) reuses shards instead of
/// growing the registry. Accumulated counts survive the hand-off.
struct ShardReleaser {
  Registry::Shard* shard = nullptr;
  ~ShardReleaser() {
    if (shard != nullptr) Registry::Instance().ReleaseShard(shard);
  }
};

Registry& Registry::Instance() {
  // Leaked: worker threads (and their thread-exit hooks) may outlive main's
  // static destruction.
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Shard* Registry::AcquireShard() {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.free_shards.empty()) {
    Shard* s = st.free_shards.back();
    st.free_shards.pop_back();
    return s;
  }
  Shard* s = new Shard();
  st.shards.push_back(s);
  return s;
}

void Registry::ReleaseShard(Shard* shard) {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  st.free_shards.push_back(shard);
}

Registry::Shard* Registry::LocalShard() {
  thread_local ShardReleaser handle;
  if (handle.shard == nullptr) handle.shard = AcquireShard();
  return handle.shard;
}

int Registry::CounterId(std::string_view name) {
  RegistryState& st = State();
  int id;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    id = RegisterName(&st.counter_names, name, kMaxCounters);
  }
  // Overflow tally: counter id 0 is pre-registered in RegistryState(), and
  // the bump happens outside st.mu (CounterAdd may acquire a shard).
  if (id == kInvalidMetricId) CounterAdd(0, 1);
  return id;
}

int Registry::GaugeId(std::string_view name) {
  RegistryState& st = State();
  int id;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    id = RegisterName(&st.gauge_names, name, kMaxGauges);
  }
  if (id == kInvalidMetricId) CounterAdd(0, 1);
  return id;
}

int Registry::HistogramId(std::string_view name) {
  RegistryState& st = State();
  int id;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    id = RegisterName(&st.histogram_names, name, kMaxHistograms);
  }
  if (id == kInvalidMetricId) CounterAdd(0, 1);
  return id;
}

void Registry::CounterAdd(int id, std::uint64_t delta) {
  if (id < 0 || id >= kMaxCounters) return;  // overflow sentinel: drop
  Shard* s = LocalShard();
  s->counters[id].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::HistogramRecord(int id, std::uint64_t value) {
  if (id < 0 || id >= kMaxHistograms) return;  // overflow sentinel: drop
  Shard::Hist& h = LocalShard()->histograms[id];
  h.buckets[HistogramBucket(value)].fetch_add(1, std::memory_order_relaxed);
  h.count.fetch_add(1, std::memory_order_relaxed);
  h.sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMinU64(&h.min, value);
  AtomicMaxU64(&h.max, value);
}

void Registry::GaugeSet(int id, std::int64_t value) {
  if (id < 0 || id >= kMaxGauges) return;  // overflow sentinel: drop
  State().gauges[id].store(value, std::memory_order_relaxed);
}

void Registry::GaugeMax(int id, std::int64_t value) {
  if (id < 0 || id >= kMaxGauges) return;  // overflow sentinel: drop
  std::atomic<std::int64_t>& cell = State().gauges[id];
  std::int64_t cur = cell.load(std::memory_order_relaxed);
  while (cur < value &&
         !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

MetricsSnapshot Registry::Snapshot() const {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);

  MetricsSnapshot snap;
  snap.counters.resize(st.counter_names.size());
  for (std::size_t i = 0; i < st.counter_names.size(); ++i) {
    snap.counters[i] = {st.counter_names[i], 0};
  }
  snap.gauges.resize(st.gauge_names.size());
  for (std::size_t i = 0; i < st.gauge_names.size(); ++i) {
    snap.gauges[i] = {st.gauge_names[i],
                      st.gauges[i].load(std::memory_order_relaxed)};
  }
  snap.histograms.resize(st.histogram_names.size());
  for (std::size_t i = 0; i < st.histogram_names.size(); ++i) {
    snap.histograms[i].name = st.histogram_names[i];
  }

  // Merge shards in creation (index) order — the documented merge order.
  for (Shard* shard : st.shards) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].second +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      const Shard::Hist& h = shard->histograms[i];
      HistogramSnapshot& out = snap.histograms[i];
      const std::uint64_t n = h.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      for (int b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
      const std::uint64_t mn = h.min.load(std::memory_order_relaxed);
      out.min = out.count == 0 ? mn : std::min(out.min, mn);
      out.max = std::max(out.max, h.max.load(std::memory_order_relaxed));
      out.count += n;
      out.sum += h.sum.load(std::memory_order_relaxed);
    }
  }

  std::sort(snap.counters.begin(), snap.counters.end());
  std::sort(snap.gauges.begin(), snap.gauges.end());
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

std::uint64_t Registry::CounterValue(std::string_view name) const {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  for (std::size_t i = 0; i < st.counter_names.size(); ++i) {
    if (st.counter_names[i] != name) continue;
    std::uint64_t total = 0;
    for (Shard* shard : st.shards) {
      total += shard->counters[i].load(std::memory_order_relaxed);
    }
    return total;
  }
  return 0;
}

void Registry::Reset() {
  RegistryState& st = State();
  std::lock_guard<std::mutex> lock(st.mu);
  for (Shard* shard : st.shards) shard->Zero();
  for (auto& g : st.gauges) g.store(0, std::memory_order_relaxed);
}

}  // namespace tfmae::obs
