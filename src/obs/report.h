// Run-ledger reporting: single-run summaries and two-run diffs
// (loss-curve deltas, score-distribution drift). Shared by the
// tools/tfmae_report CLI and the golden tests, so the rendering itself is
// testable without spawning a process.
//
// All output is deterministic: wall-clock timestamps are reported only as
// run-relative durations derived from the event "t" fields when explicitly
// requested (RenderRunReport with show_timing), and the diff view never
// includes them — two renders of the same pair of ledgers are
// byte-identical.
#ifndef TFMAE_OBS_REPORT_H_
#define TFMAE_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/ledger.h"

namespace tfmae::obs {

struct ReportOptions {
  /// Include wall-clock-derived figures (run duration, steps/sec) in the
  /// single-run summary. Off in tests: timing varies run to run.
  bool show_timing = true;
  /// Rows of the per-epoch loss table (0 = all).
  int max_epoch_rows = 0;
};

/// Digest of one ledger the renderers work from (exposed for tests).
struct RunDigest {
  std::string tool;
  std::string run_id;
  int num_threads = 0;
  bool sealed = false;
  std::int64_t dropped_lines = 0;
  std::int64_t steps = 0;
  std::int64_t guard_trips = 0;
  std::int64_t guard_give_ups = 0;
  std::int64_t checkpoints_ok = 0;
  std::int64_t checkpoints_failed = 0;
  std::int64_t stream_events = 0;
  std::int64_t plan_captures = 0;     ///< "plan" events (inference-plan
                                      ///< captures) in the run
  std::int64_t plan_ops = 0;          ///< replay ops of the last capture
  std::int64_t plan_fused_ops = 0;    ///< ops fused away in the last capture
  std::int64_t plan_arena_bytes = 0;  ///< arena size of the last capture
  // "quant" events (int8 scoring path, DESIGN.md §12).
  std::int64_t quant_calibrations = 0;  ///< verdict=calibrated events
  std::int64_t quant_plans = 0;         ///< verdict=self_verified events
  std::int64_t quant_fallbacks = 0;     ///< verdict=fallback events
  std::int64_t quant_sites = 0;         ///< calibrated sites (last event)
  std::int64_t quant_linear_ops = 0;    ///< int8 matmuls (last plan)
  std::int64_t quant_elided_pairs = 0;  ///< elided quant/dequant pairs
  std::int64_t quant_arena_bytes = 0;   ///< packed u8 arena (last plan)
  double quant_amax_min = 0.0;  ///< calibration range summary (last event)
  double quant_amax_max = 0.0;
  std::string quant_fallback_reason;  ///< reason of the last fallback
  double first_loss = 0.0;  ///< loss of the first step event
  double last_loss = 0.0;   ///< loss of the last step event
  /// (epoch, mean_loss) per epoch_end event, in order.
  std::vector<std::pair<std::int64_t, double>> epochs;
  /// score_histogram events, in order.
  std::vector<LedgerEvent> histograms;
  std::uint64_t first_t_us = 0;  ///< timestamp of the first event
  std::uint64_t last_t_us = 0;   ///< timestamp of the last event
};

RunDigest DigestRun(const LedgerFile& file);

/// Two-sample Kolmogorov-Smirnov distance between two binned score
/// distributions: sup |CDF_a - CDF_b| over the merged bucket edges. Each
/// histogram is (lo, hi, buckets); buckets span [lo, hi] linearly. Returns
/// 0 when either side is empty.
double KsDistance(double lo_a, double hi_a,
                  const std::vector<std::uint64_t>& buckets_a, double lo_b,
                  double hi_b, const std::vector<std::uint64_t>& buckets_b);

/// Human-readable single-run summary: manifest, integrity state, step and
/// guard counts, per-epoch loss table, stored score-distribution quantiles.
std::string RenderRunReport(const LedgerFile& file,
                            const ReportOptions& options = {});

/// Two-run comparison: per-epoch loss deltas, final-loss delta, guard and
/// checkpoint count deltas, and K-S drift per stored score histogram.
/// Deterministic (never includes timing).
std::string RenderRunDiff(const LedgerFile& a, const LedgerFile& b,
                          const ReportOptions& options = {});

}  // namespace tfmae::obs

#endif  // TFMAE_OBS_REPORT_H_
