// RAII scoped timers, trace-event capture, and the instrumentation macros.
//
// Hot paths are instrumented with the macros defined in obs/obs_macros.h
// (included at the bottom of this header):
//
//   void Gemm(...) {
//     TFMAE_TRACE("tensor.gemm");                  // RAII scope timer
//     TFMAE_COUNTER_ADD("tensor.gemm.flops", 2 * m * k * n);
//     ...
//   }
//
// Each TFMAE_TRACE site feeds three metrics — `<site>.time_ns` (histogram),
// `<site>.calls` and `<site>.total_ns` (counters) — and, while tracing is
// active, appends a complete-event record consumable as a chrome://tracing
// timeline (obs/export.h).
//
// Gating (the instrumentation contract, docs/OBSERVABILITY.md):
//  * Compile time: the macros expand to no-ops unless the tree is built
//    with -DTFMAE_OBS=ON (which defines TFMAE_OBS_ENABLED). The default
//    build carries zero observability code on the hot paths.
//  * Run time: in an observability build, recording is further gated on
//    Enabled() — initialized from the TFMAE_OBS environment variable
//    (TFMAE_OBS=1 turns collection on) and settable programmatically. A
//    runtime-disabled site costs one relaxed atomic load and a branch.
//
// The functions in this header (registry access, SetEnabled, exporter
// support) are always compiled, so tooling and tests can link against them
// in any build; only the macro call sites vanish.
#ifndef TFMAE_OBS_TRACE_H_
#define TFMAE_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace tfmae::obs {

/// True iff this build carries the instrumentation macros
/// (-DTFMAE_OBS=ON).
constexpr bool CompiledIn() {
#if defined(TFMAE_OBS_ENABLED)
  return true;
#else
  return false;
#endif
}

namespace internal {
/// Runtime collection switch. Read on every instrumented call; do not
/// touch directly — use Enabled()/SetEnabled().
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// True iff recording is enabled at runtime. Defaults from the TFMAE_OBS
/// environment variable ("1"/"true"/"on" enable).
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns runtime recording on or off (overrides the environment default).
void SetEnabled(bool on);

/// Monotonic nanoseconds since an arbitrary process-wide origin (captured
/// on first use). All trace timestamps share this origin.
std::uint64_t NowNs();

/// One TFMAE_TRACE call site: the interned name plus the metric ids it
/// records into. Obtained once per site via a function-local static.
struct TraceSite {
  const char* name;
  int hist_time_ns;    ///< histogram `<name>.time_ns`
  int counter_calls;   ///< counter `<name>.calls`
  int counter_total;   ///< counter `<name>.total_ns`
};

/// Registers (or looks up) the site named `name`. Thread-safe; the returned
/// pointer is valid for the process lifetime.
TraceSite* GetTraceSite(const char* name);

/// Scope timer for one site. If recording is disabled at construction the
/// destructor does nothing (the scope is not retroactively recorded when
/// recording flips on mid-scope).
class ScopedTrace {
 public:
  explicit ScopedTrace(TraceSite* site) {
    if (Enabled()) {
      site_ = site;
      start_ = NowNs();
    }
  }
  ~ScopedTrace() {
    if (site_ != nullptr) Record();
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  void Record();  // out of line: histogram + counters + trace event

  TraceSite* site_ = nullptr;
  std::uint64_t start_ = 0;
};

/// Accumulates one autograd backward-node execution into
/// `autograd.<op>.self_ns` / `autograd.<op>.calls`. `op` must be a string
/// with process lifetime (op names are literals); ids are cached by
/// pointer identity.
void AutogradRecord(const char* op, std::uint64_t self_ns);

// ---- Trace-event capture (chrome://tracing timelines) ----------------------

/// A completed TFMAE_TRACE scope captured while tracing was active.
struct TraceEvent {
  const TraceSite* site;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
};

/// Starts capturing trace events, up to `max_events_per_thread` per thread
/// (further events are dropped and counted, not resized — capture must not
/// perturb the workload it measures). Implies nothing about Enabled();
/// recording still requires it.
void StartTracing(std::size_t max_events_per_thread = std::size_t{1} << 16);

/// Stops capture. Captured events remain available to CollectTraceEvents.
void StopTracing();

/// True while trace events are being captured.
bool TracingActive();

/// All captured events as (thread index, event), in per-thread capture
/// order; thread indices are assigned in buffer-creation order.
std::vector<std::pair<int, TraceEvent>> CollectTraceEvents();

/// Appends one manually-timed event to the calling thread's capture buffer
/// (no-op unless tracing is active; over-capacity events are dropped and
/// counted like ScopedTrace's). For spans whose begin and end are observed
/// on different threads or reconstructed after the fact — e.g. the serving
/// plane's sampled window timelines, where a window's queue wait starts on
/// the pushing thread and ends on the scoring thread. `start_ns` must come
/// from NowNs() so the span lands on the shared timeline origin.
void AppendTraceEvent(const TraceSite* site, std::uint64_t start_ns,
                      std::uint64_t dur_ns);

/// Discards captured events and resets the dropped-event count.
void ClearTraceEvents();

/// Events dropped because a per-thread buffer was full.
std::uint64_t DroppedTraceEvents();

}  // namespace tfmae::obs

#include "obs/obs_macros.h"  // TFMAE_TRACE / TFMAE_COUNTER_ADD / ...

#endif  // TFMAE_OBS_TRACE_H_
