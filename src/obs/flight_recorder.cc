#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/metrics.h"

namespace tfmae::obs {
namespace {

std::uint64_t WallClockMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Async-signal-safe unsigned decimal formatting; returns chars written.
std::size_t FormatU64Safe(std::uint64_t v, char* out, std::size_t cap) {
  char tmp[24];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0 && n < sizeof(tmp));
  std::size_t written = 0;
  while (n > 0 && written + 1 < cap) out[written++] = tmp[--n];
  return written;
}

/// write() the whole buffer, retrying short writes (still signal-safe).
bool WriteAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ::ssize_t n = ::write(fd, data, size);
    if (n <= 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

volatile ::sig_atomic_t g_in_signal_dump = 0;

void FatalSignalHandler(int signo) {
  // SA_RESETHAND restored the default disposition before we ran, so the
  // re-raise below terminates the process with the original signal.
  if (g_in_signal_dump == 0) {
    g_in_signal_dump = 1;
    FlightRecorder::Instance().DumpSignalSafe("fatal_signal", signo);
  }
  ::raise(signo);
}

}  // namespace

FlightRecorder& FlightRecorder::Instance() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::Arm(const std::string& postmortem_path) {
  armed_.store(false, std::memory_order_relaxed);
  for (Entry& e : entries_) e.len.store(0, std::memory_order_relaxed);
  head_.store(0, std::memory_order_relaxed);
  std::snprintf(path_, sizeof(path_), "%s", postmortem_path.c_str());
  armed_.store(true, std::memory_order_release);
}

void FlightRecorder::Disarm() {
  armed_.store(false, std::memory_order_relaxed);
  path_[0] = '\0';
}

void FlightRecorder::Render(const char* kind, const char* detail,
                            std::size_t detail_len) {
  const std::uint64_t seq =
      head_.fetch_add(1, std::memory_order_relaxed);
  Entry& entry = entries_[seq % kMaxEntries];
  entry.len.store(0, std::memory_order_relaxed);  // invalidate while writing
  // Pre-render the complete postmortem line; the signal-safe dump only
  // copies bytes. Detail text is JSON-escaped (quotes/backslashes/controls).
  char escaped[kEntryBytes];
  std::size_t out = 0;
  for (std::size_t i = 0; i < detail_len && out + 6 < sizeof(escaped); ++i) {
    const char c = detail[i];
    if (c == '"' || c == '\\') {
      escaped[out++] = '\\';
      escaped[out++] = c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += static_cast<std::size_t>(std::snprintf(
          escaped + out, sizeof(escaped) - out, "\\u%04x", c));
    } else {
      escaped[out++] = c;
    }
  }
  escaped[out] = '\0';
  const int len = std::snprintf(
      entry.text, sizeof(entry.text),
      "{\"n\":%llu,\"t\":%llu,\"kind\":\"%s\",\"detail\":\"%s\"}",
      static_cast<unsigned long long>(seq),
      static_cast<unsigned long long>(WallClockMicros()), kind, escaped);
  entry.len.store(len > 0 ? std::min<int>(len, kEntryBytes - 1) : 0,
                  std::memory_order_release);
}

void FlightRecorder::Note(const char* kind, const std::string& detail) {
  if (!armed()) return;
  Render(kind, detail.data(), detail.size());
}

void FlightRecorder::NoteLedgerLine(const char* type,
                                    const std::string& line) {
  if (!armed()) return;
  std::size_t len = line.size();
  while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) --len;
  (void)type;  // the line already carries its type field
  Render("ledger", line.data(), len);
}

bool FlightRecorder::DumpSignalSafe(const char* reason, int signo) {
  if (!armed() || path_[0] == '\0') return false;
  const int fd = ::open(path_, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  char buf[96];
  std::size_t n = 0;
  const char* preamble = "{\"postmortem\":{\"reason\":\"";
  bool ok = WriteAll(fd, preamble, std::strlen(preamble));
  ok = ok && WriteAll(fd, reason, std::strlen(reason));
  if (signo >= 0) {
    const char* sig = "\",\"signal\":";
    ok = ok && WriteAll(fd, sig, std::strlen(sig));
    n = FormatU64Safe(static_cast<std::uint64_t>(signo), buf, sizeof(buf));
    ok = ok && WriteAll(fd, buf, n);
    ok = ok && WriteAll(fd, ",\"entries\":[\n", 13);
  } else {
    ok = ok && WriteAll(fd, "\",\"entries\":[\n", 14);
  }
  // Oldest surviving entry first. head_ is the next sequence number; the
  // ring holds at most kMaxEntries of the most recent ones.
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t first = head > kMaxEntries ? head - kMaxEntries : 0;
  bool first_entry = true;
  for (std::uint64_t s = first; s < head; ++s) {
    const Entry& entry = entries_[s % kMaxEntries];
    const int len = entry.len.load(std::memory_order_acquire);
    if (len <= 0) continue;  // empty or mid-write
    if (!first_entry) ok = ok && WriteAll(fd, ",\n", 2);
    ok = ok && WriteAll(fd, entry.text, static_cast<std::size_t>(len));
    first_entry = false;
  }
  ok = ok && WriteAll(fd, "\n]}}\n", 5);
  ::close(fd);
  return ok;
}

bool FlightRecorder::Dump(const char* reason) {
  if (!DumpSignalSafe(reason, -1)) return false;
  // Normal path: append a counters appendix (not signal-safe — snapshots
  // the registry). The postmortem stays valid JSON by rewriting the tail.
  std::FILE* f = std::fopen(path_, "r+");
  if (f == nullptr) return true;  // entries made it out; appendix optional
  // Overwrite the final "}}\n" with a counters object.
  std::fseek(f, -3, SEEK_END);
  const MetricsSnapshot snap = Registry::Instance().Snapshot();
  std::fprintf(f, ",\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (value == 0) continue;  // the appendix is context, not a full dump
    std::fprintf(f, "%s\n  \"%s\": %llu", first ? "" : ",", name.c_str(),
                 static_cast<unsigned long long>(value));
    first = false;
  }
  std::fprintf(f, "\n}}}\n");
  std::fclose(f);
  return true;
}

void FlightRecorder::InstallSignalHandlers() {
  struct ::sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &FatalSignalHandler;
  action.sa_flags = SA_RESETHAND;
  ::sigemptyset(&action.sa_mask);
  for (const int signo : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL}) {
    ::sigaction(signo, &action, nullptr);
  }
}

}  // namespace tfmae::obs
