// Exporters for the metrics registry and the trace-event capture.
//
// Three formats (the exporter contract in docs/OBSERVABILITY.md):
//  * DumpText     — human-readable report: counters, gauges, histogram
//                   percentiles, a "top sites by total time" table, and a
//                   "top autograd ops by self time" table.
//  * DumpJson     — machine-readable snapshot, one JSON object, stable key
//                   order (metrics sorted by name), sibling format to the
//                   BENCH_*.json benchmark trajectory files.
//  * WriteChromeTrace — chrome://tracing / Perfetto "traceEvents" JSON from
//                   the captured TFMAE_TRACE scopes.
//
// All exporters read a merged snapshot (shards combined in index order), so
// count-typed output is bitwise identical at any TFMAE_NUM_THREADS; wall
// times naturally vary run to run.
#ifndef TFMAE_OBS_EXPORT_H_
#define TFMAE_OBS_EXPORT_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/metrics.h"

namespace tfmae::obs {

/// Registry snapshot with the fault registry's counters spliced in (the
/// fault layer sits below obs and cannot push into the Registry itself —
/// see util/fault.h). Keeps the by-name ordering contract. Shared by the
/// text/JSON exporters and the Prometheus endpoint (obs/prom_export.h).
MetricsSnapshot SnapshotWithFaults();

/// Human-readable dump of the current registry state.
/// `top_k` bounds the two "top ops" tables.
void DumpText(std::ostream& os, int top_k = 10);

/// JSON dump of the current registry state. Returns false on I/O failure.
bool DumpJson(const std::string& path);

/// JSON dump to an open stream (used by DumpJson and tests).
void DumpJsonTo(std::ostream& os);

/// Writes captured trace events as a chrome://tracing "traceEvents" JSON
/// document. Call after StopTracing() once in-flight instrumented work has
/// quiesced (per-thread buffers are read without synchronizing against
/// concurrent recording). Returns false on I/O failure.
bool WriteChromeTrace(const std::string& path);

/// Command-line glue shared by benches and examples: consumes the flags
///   --obs_json=PATH       enable recording; dump JSON metrics at exit
///   --obs_trace=PATH      enable recording + tracing; write a chrome trace
///                         at exit
///   --obs_text            enable recording; dump the text report to stderr
///                         at exit
///   --ledger=PATH         open the process run ledger at PATH (sealed at
///                         exit; see obs/ledger.h)
///   --flight_recorder=PATH  arm the crash flight recorder and install the
///                         fatal-signal postmortem handlers
/// from argv (compacting it and decrementing *argc) and registers the
/// corresponding atexit writers. Returns true if any flag was seen. In a
/// build without instrumentation (-DTFMAE_OBS=OFF) the flags are still
/// consumed but PrintObsDisabledHint() fires: the dumps would be empty.
bool MaybeProfileFromArgs(int* argc, char** argv);

/// The one shared "this build has no instrumentation" stderr hint, so every
/// bench and example prints the identical -DTFMAE_OBS=ON guidance.
void PrintObsDisabledHint();

}  // namespace tfmae::obs

#endif  // TFMAE_OBS_EXPORT_H_
