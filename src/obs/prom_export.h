// Prometheus text-exposition renderer for the metrics registry
// (docs/OBSERVABILITY.md, "Live endpoints & SLOs").
//
// Renders a MetricsSnapshot in the Prometheus text exposition format
// (version 0.0.4): every counter becomes a `# TYPE ... counter` family with
// the conventional `_total` suffix, gauges stay as-is, and every log2
// histogram becomes a cumulative `_bucket{le="..."}` series (inclusive
// upper bounds from HistogramBucketUpperBound) plus `_sum`/`_count` and the
// mandatory `le="+Inf"` bucket, which always equals `_count`.
//
// Name mapping: registry names are `subsystem.op.stat`; Prometheus names
// allow only [a-zA-Z0-9_:], so dots (and any other invalid byte) become
// underscores and the whole family is prefixed `tfmae_`:
//   serve.stage.queue_ns  ->  tfmae_serve_stage_queue_ns
// The mapping is mechanical, so a scrape and an --obs_json dump of the same
// registry state describe the same metrics under predictable names.
//
// Determinism: the renderer is a pure function of the snapshot (families in
// snapshot order, which Registry::Snapshot sorts by name), so two renders
// of identical metric state are byte-identical.
#ifndef TFMAE_OBS_PROM_EXPORT_H_
#define TFMAE_OBS_PROM_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace tfmae::obs {

/// Registry name -> Prometheus metric name: every byte outside
/// [a-zA-Z0-9_:] becomes '_', and a leading digit gets a '_' prepended
/// (Prometheus names must not start with a digit). Does NOT add the
/// `tfmae_` prefix or the counter `_total` suffix; the renderer does.
std::string PromMetricName(std::string_view name);

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline become \\, \", and \n.
std::string PromEscapeLabel(std::string_view value);

/// Renders `snap` as a complete text-exposition document (trailing
/// newline included).
std::string RenderPrometheusText(const MetricsSnapshot& snap);

/// Renders the live registry (with fault counters spliced in, matching the
/// JSON/text exporters' SnapshotWithFaults view).
std::string RenderPrometheusText();

}  // namespace tfmae::obs

#endif  // TFMAE_OBS_PROM_EXPORT_H_
