#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

namespace tfmae::obs {
namespace {

std::string Format(const char* fmt, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string FormatI(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

/// CDF of a linear-bucketed histogram evaluated at `x` (step CDF: each
/// bucket's mass lands at its upper edge).
double StepCdf(double lo, double hi, const std::vector<std::uint64_t>& buckets,
               std::uint64_t total, double x) {
  if (total == 0) return 0.0;
  if (buckets.empty() || hi <= lo) {
    // Degenerate distribution concentrated at lo.
    return x >= lo ? 1.0 : 0.0;
  }
  const double width = (hi - lo) / static_cast<double>(buckets.size());
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double edge = lo + width * static_cast<double>(b + 1);
    if (edge > x + 1e-300 && edge > x) break;
    seen += buckets[b];
  }
  return static_cast<double>(seen) / static_cast<double>(total);
}

std::uint64_t Total(const std::vector<std::uint64_t>& buckets) {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  return total;
}

/// Quantile of a linear-bucketed histogram (linear interpolation inside the
/// bucket — score buckets are already linear, unlike the registry's log2
/// buckets).
double LinearQuantile(double lo, double hi,
                      const std::vector<std::uint64_t>& buckets, double p) {
  const std::uint64_t total = Total(buckets);
  if (total == 0 || buckets.empty() || hi <= lo) return lo;
  const double target = p * static_cast<double>(total);
  const double width = (hi - lo) / static_cast<double>(buckets.size());
  double seen = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double next = seen + static_cast<double>(buckets[b]);
    if (next >= target && buckets[b] > 0) {
      const double f = (target - seen) / static_cast<double>(buckets[b]);
      return lo + width * (static_cast<double>(b) + std::clamp(f, 0.0, 1.0));
    }
    seen = next;
  }
  return hi;
}

}  // namespace

RunDigest DigestRun(const LedgerFile& file) {
  RunDigest digest;
  digest.tool = file.Tool();
  digest.run_id = file.RunId();
  digest.num_threads = file.NumThreads();
  digest.sealed = file.sealed;
  digest.dropped_lines = file.dropped_lines;
  bool first_step = true;
  for (const LedgerEvent& event : file.events) {
    if (digest.first_t_us == 0) digest.first_t_us = event.t_us;
    digest.last_t_us = event.t_us;
    if (event.type == "step") {
      ++digest.steps;
      digest.last_loss = event.Number("loss");
      if (first_step) {
        digest.first_loss = digest.last_loss;
        first_step = false;
      }
    } else if (event.type == "guard_trip") {
      ++digest.guard_trips;
    } else if (event.type == "guard_give_up") {
      ++digest.guard_give_ups;
    } else if (event.type == "checkpoint_write") {
      const std::string* ok = event.Field("ok");
      if (ok != nullptr && *ok == "true") {
        ++digest.checkpoints_ok;
      } else {
        ++digest.checkpoints_failed;
      }
    } else if (event.type == "epoch_end") {
      digest.epochs.emplace_back(
          static_cast<std::int64_t>(event.Number("epoch")),
          event.Number("mean_loss"));
    } else if (event.type == "score_histogram") {
      digest.histograms.push_back(event);
    } else if (event.type == "stream") {
      ++digest.stream_events;
    } else if (event.type == "plan") {
      ++digest.plan_captures;
      digest.plan_ops = static_cast<std::int64_t>(event.Number("ops"));
      digest.plan_fused_ops =
          static_cast<std::int64_t>(event.Number("fused_ops"));
      digest.plan_arena_bytes =
          static_cast<std::int64_t>(event.Number("arena_bytes"));
    } else if (event.type == "quant") {
      const std::string verdict = event.Text("verdict");
      if (verdict == "calibrated") {
        ++digest.quant_calibrations;
        digest.quant_sites = static_cast<std::int64_t>(event.Number("sites"));
        digest.quant_amax_min = event.Number("amax_min");
        digest.quant_amax_max = event.Number("amax_max");
      } else if (verdict == "self_verified") {
        ++digest.quant_plans;
        digest.quant_linear_ops =
            static_cast<std::int64_t>(event.Number("quant_linear_ops"));
        digest.quant_elided_pairs =
            static_cast<std::int64_t>(event.Number("elided_quant_pairs"));
        digest.quant_arena_bytes =
            static_cast<std::int64_t>(event.Number("quant_arena_bytes"));
      } else if (verdict == "fallback") {
        ++digest.quant_fallbacks;
        digest.quant_fallback_reason = event.Text("reason");
      }
    }
  }
  return digest;
}

double KsDistance(double lo_a, double hi_a,
                  const std::vector<std::uint64_t>& buckets_a, double lo_b,
                  double hi_b, const std::vector<std::uint64_t>& buckets_b) {
  const std::uint64_t total_a = Total(buckets_a);
  const std::uint64_t total_b = Total(buckets_b);
  if (total_a == 0 || total_b == 0) return 0.0;
  // Evaluate both step CDFs on the union of bucket edges.
  std::set<double> edges;
  const auto add_edges = [&edges](double lo, double hi, std::size_t n) {
    edges.insert(lo);
    if (n == 0 || hi <= lo) return;
    const double width = (hi - lo) / static_cast<double>(n);
    for (std::size_t b = 1; b <= n; ++b) {
      edges.insert(lo + width * static_cast<double>(b));
    }
  };
  add_edges(lo_a, hi_a, buckets_a.size());
  add_edges(lo_b, hi_b, buckets_b.size());
  double ks = 0.0;
  for (double x : edges) {
    const double d = std::abs(StepCdf(lo_a, hi_a, buckets_a, total_a, x) -
                              StepCdf(lo_b, hi_b, buckets_b, total_b, x));
    ks = std::max(ks, d);
  }
  return ks;
}

std::string RenderRunReport(const LedgerFile& file,
                            const ReportOptions& options) {
  const RunDigest d = DigestRun(file);
  std::string out;
  out += "== run: " + d.run_id + " (" + d.tool + ") ==\n";
  out += "  threads: " + FormatI(d.num_threads);
  out += "  integrity: ";
  out += d.sealed ? "sealed" : "UNSEALED prefix";
  if (d.dropped_lines > 0) {
    out += " (" + FormatI(d.dropped_lines) + " corrupt line(s) dropped)";
  }
  out += "\n";
  out += "  events: " + FormatI(static_cast<std::int64_t>(file.events.size()));
  out += "  steps: " + FormatI(d.steps);
  out += "  guard trips: " + FormatI(d.guard_trips);
  if (d.guard_give_ups > 0) {
    out += "  GAVE UP x" + FormatI(d.guard_give_ups);
  }
  out += "  checkpoints: " + FormatI(d.checkpoints_ok);
  if (d.checkpoints_failed > 0) {
    out += " (+" + FormatI(d.checkpoints_failed) + " failed)";
  }
  if (d.stream_events > 0) {
    out += "  stream events: " + FormatI(d.stream_events);
  }
  out += "\n";
  if (d.steps > 0) {
    out += "  loss: first " + Format("%.6g", d.first_loss) + " -> last " +
           Format("%.6g", d.last_loss) + "\n";
  }
  if (d.plan_captures > 0) {
    out += "  inference plan: " + FormatI(d.plan_captures) + " capture(s), " +
           FormatI(d.plan_ops) + " ops (" + FormatI(d.plan_fused_ops) +
           " fused away), arena " + FormatI(d.plan_arena_bytes) + " B\n";
  }
  if (d.quant_calibrations + d.quant_plans + d.quant_fallbacks > 0) {
    out += "  quant:";
    if (d.quant_calibrations > 0) {
      out += " calibrated " + FormatI(d.quant_sites) + " sites (|x| " +
             Format("%.4g", d.quant_amax_min) + ".." +
             Format("%.4g", d.quant_amax_max) + ")";
    }
    if (d.quant_plans > 0) {
      if (d.quant_calibrations > 0) out += ",";
      out += " int8 plan self-verified: " + FormatI(d.quant_linear_ops) +
             " int8 matmuls, " + FormatI(d.quant_elided_pairs) +
             " elided quant pairs, u8 arena " +
             FormatI(d.quant_arena_bytes) + " B";
    }
    if (d.quant_fallbacks > 0) {
      if (d.quant_calibrations + d.quant_plans > 0) out += ",";
      out += " " + FormatI(d.quant_fallbacks) + " fp32 fallback(s)";
      if (!d.quant_fallback_reason.empty()) {
        out += " (" + d.quant_fallback_reason + ")";
      }
    }
    out += "\n";
  }
  if (options.show_timing && d.last_t_us > d.first_t_us) {
    const double sec =
        static_cast<double>(d.last_t_us - d.first_t_us) / 1e6;
    out += "  duration: " + Format("%.2f", sec) + " s";
    if (d.steps > 1) {
      out += "  (" + Format("%.1f", static_cast<double>(d.steps) / sec) +
             " steps/s)";
    }
    out += "\n";
  }
  if (!d.epochs.empty()) {
    out += "  epoch  mean_loss\n";
    std::size_t rows = d.epochs.size();
    if (options.max_epoch_rows > 0) {
      rows = std::min<std::size_t>(
          rows, static_cast<std::size_t>(options.max_epoch_rows));
    }
    for (std::size_t i = 0; i < rows; ++i) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "  %5lld  %.9g\n",
                    static_cast<long long>(d.epochs[i].first),
                    d.epochs[i].second);
      out += buf;
    }
    if (rows < d.epochs.size()) {
      out += "  ... (" + FormatI(static_cast<std::int64_t>(d.epochs.size())) +
             " epochs total)\n";
    }
  }
  for (const LedgerEvent& h : d.histograms) {
    const auto buckets = h.U64Array("buckets");
    const double lo = h.Number("lo");
    const double hi = h.Number("hi");
    out += "  scores '" + h.Text("name") +
           "': n=" + FormatI(static_cast<std::int64_t>(h.Number("count")));
    out += "  p50 " + Format("%.6g", LinearQuantile(lo, hi, buckets, 0.5));
    out += "  p95 " + Format("%.6g", LinearQuantile(lo, hi, buckets, 0.95));
    out += "  p99 " + Format("%.6g", LinearQuantile(lo, hi, buckets, 0.99));
    out += "  max " + Format("%.6g", hi) + "\n";
  }
  return out;
}

std::string RenderRunDiff(const LedgerFile& a, const LedgerFile& b,
                          const ReportOptions& options) {
  const RunDigest da = DigestRun(a);
  const RunDigest db = DigestRun(b);
  std::string out;
  out += "== diff: " + da.run_id + " vs " + db.run_id + " ==\n";
  out += "  steps: " + FormatI(da.steps) + " vs " + FormatI(db.steps);
  if (da.steps != db.steps) out += "  [DIFFERS]";
  out += "\n";
  out += "  guard trips: " + FormatI(da.guard_trips) + " vs " +
         FormatI(db.guard_trips);
  if (da.guard_trips != db.guard_trips) out += "  [DIFFERS]";
  out += "\n";
  out += "  checkpoints: " + FormatI(da.checkpoints_ok) + " vs " +
         FormatI(db.checkpoints_ok) + "\n";
  if (da.steps > 0 && db.steps > 0) {
    const double delta = db.last_loss - da.last_loss;
    out += "  final step loss: " + Format("%.9g", da.last_loss) + " vs " +
           Format("%.9g", db.last_loss) + "  (delta " +
           Format("%+.3g", delta) + ")\n";
  }

  const std::size_t epochs = std::min(da.epochs.size(), db.epochs.size());
  if (epochs > 0) {
    out += "  epoch  mean_loss_a    mean_loss_b    delta\n";
    std::size_t rows = epochs;
    if (options.max_epoch_rows > 0) {
      rows = std::min<std::size_t>(
          rows, static_cast<std::size_t>(options.max_epoch_rows));
    }
    for (std::size_t i = 0; i < rows; ++i) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "  %5lld  %-13.6g %-13.6g %+.3g\n",
                    static_cast<long long>(da.epochs[i].first),
                    da.epochs[i].second, db.epochs[i].second,
                    db.epochs[i].second - da.epochs[i].second);
      out += buf;
    }
    if (rows < epochs) {
      out += "  ... (" + FormatI(static_cast<std::int64_t>(epochs)) +
             " shared epochs total)\n";
    }
  }
  if (da.epochs.size() != db.epochs.size()) {
    out += "  epoch count differs: " +
           FormatI(static_cast<std::int64_t>(da.epochs.size())) + " vs " +
           FormatI(static_cast<std::int64_t>(db.epochs.size())) + "\n";
  }

  // Score-distribution drift: match histograms by name AND occurrence
  // (a run that calls Score twice records two events with the same name;
  // the n-th of run a compares against the n-th of run b).
  const auto nth_with_name = [](const std::vector<LedgerEvent>& histograms,
                                const std::string& name,
                                std::size_t n) -> const LedgerEvent* {
    for (const LedgerEvent& candidate : histograms) {
      if (candidate.Text("name") != name) continue;
      if (n == 0) return &candidate;
      --n;
    }
    return nullptr;
  };
  std::map<std::string, std::size_t> seen_a;
  for (const LedgerEvent& ha : da.histograms) {
    const std::string name = ha.Text("name");
    const LedgerEvent* hb = nth_with_name(db.histograms, name, seen_a[name]++);
    if (hb == nullptr) {
      out += "  scores '" + name + "': only in run a\n";
      continue;
    }
    const double ks =
        KsDistance(ha.Number("lo"), ha.Number("hi"), ha.U64Array("buckets"),
                   hb->Number("lo"), hb->Number("hi"), hb->U64Array("buckets"));
    out += "  scores '" + name + "': K-S distance " + Format("%.6f", ks);
    if (ks == 0.0) out += "  (identical)";
    out += "\n";
  }
  std::map<std::string, std::size_t> seen_b;
  for (const LedgerEvent& hb : db.histograms) {
    const std::string name = hb.Text("name");
    if (nth_with_name(da.histograms, name, seen_b[name]++) == nullptr) {
      out += "  scores '" + name + "': only in run b\n";
    }
  }
  return out;
}

}  // namespace tfmae::obs
