// Instrumentation macro definitions — deliberately NO include guard.
//
// Normal code gets these via obs/trace.h and never includes this file
// directly. The file is re-includable so the disabled expansions can be
// materialized inside an observability build: defining
// TFMAE_OBS_FORCE_DISABLED and re-including this header swaps every macro
// for its compiled-out form (tests/obs_test.cc uses this to prove the
// disabled path is a no-op via constant evaluation).
//
// Disabled expansions evaluate nothing: arguments appear only inside
// sizeof, an unevaluated context, so they cost zero code bytes while still
// marking their operands as used (no -Wunused warnings) and staying valid
// in constant-evaluated contexts.

#undef TFMAE_OBS_CONCAT_IMPL_
#undef TFMAE_OBS_CONCAT_
#undef TFMAE_TRACE
#undef TFMAE_COUNTER_ADD
#undef TFMAE_HISTOGRAM_RECORD
#undef TFMAE_GAUGE_SET
#undef TFMAE_GAUGE_MAX

#define TFMAE_OBS_CONCAT_IMPL_(a, b) a##b
#define TFMAE_OBS_CONCAT_(a, b) TFMAE_OBS_CONCAT_IMPL_(a, b)

#if defined(TFMAE_OBS_ENABLED) && !defined(TFMAE_OBS_FORCE_DISABLED)

/// Times the rest of the enclosing scope as site `name` (a string literal):
/// `<name>.time_ns` histogram, `<name>.calls` / `<name>.total_ns` counters,
/// plus a chrome-trace event while tracing is active.
#define TFMAE_TRACE(name)                                               \
  static ::tfmae::obs::TraceSite* TFMAE_OBS_CONCAT_(tfmae_obs_site_,    \
                                                    __LINE__) =         \
      ::tfmae::obs::GetTraceSite(name);                                 \
  ::tfmae::obs::ScopedTrace TFMAE_OBS_CONCAT_(tfmae_obs_scope_,         \
                                              __LINE__)(                \
      TFMAE_OBS_CONCAT_(tfmae_obs_site_, __LINE__))

/// Adds `delta` (convertible to uint64) to the counter `name`.
#define TFMAE_COUNTER_ADD(name, delta)                                       \
  do {                                                                       \
    static const int tfmae_obs_cid_ =                                        \
        ::tfmae::obs::Registry::Instance().CounterId(name);                  \
    if (::tfmae::obs::Enabled()) {                                           \
      ::tfmae::obs::Registry::Instance().CounterAdd(                         \
          tfmae_obs_cid_, static_cast<std::uint64_t>(delta));                \
    }                                                                        \
  } while (0)

/// Records one sample `value` into the histogram `name`.
#define TFMAE_HISTOGRAM_RECORD(name, value)                                  \
  do {                                                                       \
    static const int tfmae_obs_hid_ =                                        \
        ::tfmae::obs::Registry::Instance().HistogramId(name);                \
    if (::tfmae::obs::Enabled()) {                                           \
      ::tfmae::obs::Registry::Instance().HistogramRecord(                    \
          tfmae_obs_hid_, static_cast<std::uint64_t>(value));                \
    }                                                                        \
  } while (0)

/// Sets the gauge `name` to `value` (last write wins).
#define TFMAE_GAUGE_SET(name, value)                                         \
  do {                                                                       \
    static const int tfmae_obs_gid_ =                                        \
        ::tfmae::obs::Registry::Instance().GaugeId(name);                    \
    if (::tfmae::obs::Enabled()) {                                           \
      ::tfmae::obs::Registry::Instance().GaugeSet(                           \
          tfmae_obs_gid_, static_cast<std::int64_t>(value));                 \
    }                                                                        \
  } while (0)

/// Raises the gauge `name` to `value` if larger (high-watermark).
#define TFMAE_GAUGE_MAX(name, value)                                         \
  do {                                                                       \
    static const int tfmae_obs_gid_ =                                        \
        ::tfmae::obs::Registry::Instance().GaugeId(name);                    \
    if (::tfmae::obs::Enabled()) {                                           \
      ::tfmae::obs::Registry::Instance().GaugeMax(                           \
          tfmae_obs_gid_, static_cast<std::int64_t>(value));                 \
    }                                                                        \
  } while (0)

#else  // compiled out

#define TFMAE_TRACE(name) \
  do {                    \
    (void)sizeof(name);   \
  } while (0)
#define TFMAE_COUNTER_ADD(name, delta)   \
  do {                                   \
    (void)sizeof(name), (void)sizeof(delta); \
  } while (0)
#define TFMAE_HISTOGRAM_RECORD(name, value)  \
  do {                                       \
    (void)sizeof(name), (void)sizeof(value); \
  } while (0)
#define TFMAE_GAUGE_SET(name, value)         \
  do {                                       \
    (void)sizeof(name), (void)sizeof(value); \
  } while (0)
#define TFMAE_GAUGE_MAX(name, value)         \
  do {                                       \
    (void)sizeof(name), (void)sizeof(value); \
  } while (0)

#endif
