// Crash flight recorder — a fixed-capacity in-memory ring of recent
// observability events plus a black-box postmortem dump
// (docs/OBSERVABILITY.md, "Run ledger & flight recorder").
//
// The run ledger (obs/ledger.h) records everything, durably, while the run
// is healthy. The flight recorder answers the complementary question: what
// were the LAST things that happened before a run died — including deaths
// the ledger cannot observe (SIGSEGV in a kernel, an injected-fault abort,
// the numeric guard giving up). It keeps the newest N events in a
// statically allocated ring of pre-rendered JSON lines and, on request or
// on a fatal signal, writes them out as one postmortem document.
//
// What lands in the ring:
//  * every ledger line as it is written (the ledger tees into the ring), so
//    the postmortem ends with the exact tail of the event stream;
//  * explicit Note() calls from the resilience plane's cold paths: numeric
//    guard trips and give-up, injected-fault interrupts, checkpoint write
//    failures, streaming quarantines/rejections.
//
// Dump paths:
//  * Dump(reason) — normal code: ring entries plus a metrics-counter
//    summary, written with stdio.
//  * fatal signal (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL, opt-in via
//    InstallSignalHandlers) — async-signal-safe: the handler only calls
//    open/write/close on the pre-rendered ring entries (rendering happened
//    at Note() time), then re-raises the signal with default disposition.
//    A Note() racing the handler can leave one torn entry; the dump is
//    best-effort by design and each entry is self-delimiting.
//
// Everything is statically allocated and recording costs one snprintf into
// a ring slot, so the recorder is safe to leave armed for whole training
// runs. Like the ledger, the class is always compiled; the emission sites
// in core/nn are compiled out unless -DTFMAE_OBS=ON and the recorder
// records nothing until Arm() provides an output path.
#ifndef TFMAE_OBS_FLIGHT_RECORDER_H_
#define TFMAE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace tfmae::obs {

class FlightRecorder {
 public:
  /// Ring geometry: newest kMaxEntries events, each rendered to at most
  /// kEntryBytes - 1 characters (longer details are truncated).
  static constexpr int kMaxEntries = 256;
  static constexpr int kEntryBytes = 256;

  /// Process-wide instance (intentionally leaked; signal handlers may fire
  /// during static destruction).
  static FlightRecorder& Instance();

  /// Arms the recorder: events are recorded from now on and Dump() writes
  /// to `postmortem_path`. Re-arming swaps the path and clears the ring.
  void Arm(const std::string& postmortem_path);

  /// True once Arm() was called (recording and dumping are possible).
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Stops recording and forgets the output path (tests).
  void Disarm();

  /// Records one event into the ring. `kind` is a short static tag
  /// ("guard", "fault", "checkpoint", ...); `detail` is free text. No-op
  /// while disarmed.
  void Note(const char* kind, const std::string& detail);

  /// Called by the ledger for every line it writes; `line` is the exact
  /// stored text (trailing newline stripped on entry). No-op while
  /// disarmed.
  void NoteLedgerLine(const char* type, const std::string& line);

  /// Writes the postmortem JSON (reason, ring entries oldest-to-newest, and
  /// a metrics-counter appendix) to the armed path. Returns false while
  /// disarmed or on I/O failure. Normal-path (stdio) version.
  bool Dump(const char* reason);

  /// Installs fatal-signal handlers (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL)
  /// that write an async-signal-safe postmortem to the armed path and then
  /// re-raise. Safe to call more than once; handlers chain to the previous
  /// disposition by restoring defaults (SA_RESETHAND).
  void InstallSignalHandlers();

  /// Events recorded since the last Arm() (monotone; the ring keeps the
  /// newest kMaxEntries of them).
  std::uint64_t notes_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Async-signal-safe dump used by the handlers; exposed for tests.
  /// Writes with raw open/write/close; `signo` < 0 omits the signal field.
  bool DumpSignalSafe(const char* reason, int signo);

 private:
  FlightRecorder() = default;

  struct Entry {
    std::atomic<int> len{0};  ///< 0 = empty/in-flight; published last
    char text[kEntryBytes];
  };

  void Render(const char* kind, const char* detail, std::size_t detail_len);

  Entry entries_[kMaxEntries];
  std::atomic<std::uint64_t> head_{0};
  std::atomic<bool> armed_{false};
  char path_[512] = {};
};

/// Emission-site gate, mirroring LedgerActive(): compile-time on
/// -DTFMAE_OBS=ON, runtime on the recorder being armed.
inline bool FlightRecorderActive() {
#if defined(TFMAE_OBS_ENABLED)
  return FlightRecorder::Instance().armed();
#else
  return false;
#endif
}

}  // namespace tfmae::obs

#endif  // TFMAE_OBS_FLIGHT_RECORDER_H_
