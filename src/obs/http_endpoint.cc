#include "obs/http_endpoint.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tfmae::obs {
namespace {

constexpr std::size_t kMaxHeadBytes = 8192;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

void SendAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a scraper that hung up mid-response must not SIGPIPE
    // the serving process.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

void SendResponse(int fd, const HttpResponse& response) {
  const int status =
      std::strcmp(StatusText(response.status), "Internal Server Error") == 0 &&
              response.status != 500
          ? 500
          : response.status;
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    StatusText(status) + "\r\nContent-Type: " +
                    response.content_type +
                    "\r\nContent-Length: " + std::to_string(response.body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += response.body;
  SendAll(fd, out);
}

}  // namespace

HttpEndpoint::~HttpEndpoint() { Stop(); }

void HttpEndpoint::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

bool HttpEndpoint::Start(int port, std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why + " (" + std::strerror(errno) + ")";
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind to port " + std::to_string(port));
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(addr.sin_port));
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return true;
}

void HttpEndpoint::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  // shutdown() wakes the blocking accept(); close() alone is not guaranteed
  // to on every platform.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpEndpoint::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or unrecoverable): exit the loop
    }
    ServeOne(fd);
    ::close(fd);
  }
}

void HttpEndpoint::ServeOne(int fd) {
  // A slow or stuck client may hold the head open; bound it so one bad
  // scraper cannot wedge the endpoint forever.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  std::string head;
  char buf[1024];
  while (head.find("\r\n\r\n") == std::string::npos &&
         head.size() < kMaxHeadBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // hangup or timeout before a complete head
    head.append(buf, static_cast<std::size_t>(n));
  }
  // Request line: METHOD SP TARGET SP VERSION. Headers are ignored (no
  // body is ever read: these endpoints are GET-only).
  const std::size_t line_end = head.find("\r\n");
  const std::string line =
      head.substr(0, line_end == std::string::npos ? head.size() : line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    SendResponse(fd, {400, "text/plain; charset=utf-8", "bad request\n"});
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  if (method != "GET") {
    SendResponse(fd, {405, "text/plain; charset=utf-8", "GET only\n"});
    return;
  }
  const auto it = handlers_.find(path);
  if (it == handlers_.end()) {
    SendResponse(fd, {404, "text/plain; charset=utf-8", "not found\n"});
    return;
  }
  SendResponse(fd, it->second());
}

}  // namespace tfmae::obs
