// Minimal blocking HTTP/1.1 listener for the live observability endpoints
// (docs/OBSERVABILITY.md, "Live endpoints & SLOs").
//
// Serves GET requests on registered exact paths from one accept-loop
// thread: read the request head, dispatch the handler, write the response
// with Content-Length, close. No keep-alive, no TLS, no dependencies —
// POSIX sockets only. This is deliberately the smallest thing a Prometheus
// scraper (or curl) can talk to; it is the first network surface on the
// road to ROADMAP item 1's network ingest, not a web framework.
//
// Handlers run on the endpoint thread and may block it; every other
// request waits. That is the right trade for scrape traffic (one scraper,
// seconds apart) and keeps the listener ~150 lines. Slow-client protection
// is a receive timeout on the request head plus an 8 KiB head cap.
//
// Thread-safety: Handle() before Start(); Start()/Stop() from the owning
// thread. Handlers must be safe against whatever they read (the metrics
// registry and FleetServer::stats() both are).
#ifndef TFMAE_OBS_HTTP_ENDPOINT_H_
#define TFMAE_OBS_HTTP_ENDPOINT_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace tfmae::obs {

/// One handler's reply. `status` must be a code StatusText knows (200, 400,
/// 404, 405, 503); anything else renders as 500.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpEndpoint {
 public:
  using Handler = std::function<HttpResponse()>;

  HttpEndpoint() = default;
  ~HttpEndpoint();  // Stop()

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers `handler` for GET requests whose path equals `path` exactly
  /// (any query string is stripped before matching). Call before Start().
  void Handle(std::string path, Handler handler);

  /// Binds 0.0.0.0:`port` (0 picks an ephemeral port, readable via port())
  /// and starts the accept loop. Returns false with the reason in `*error`.
  bool Start(int port, std::string* error = nullptr);

  /// The bound port; 0 before a successful Start.
  int port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  /// Shuts the listener down and joins the accept thread. Idempotent; an
  /// in-flight request finishes first.
  void Stop();

 private:
  void ServeLoop();
  void ServeOne(int fd);

  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace tfmae::obs

#endif  // TFMAE_OBS_HTTP_ENDPOINT_H_
