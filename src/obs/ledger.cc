#include "obs/ledger.h"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/flight_recorder.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace tfmae::obs {
namespace {

constexpr std::string_view kCrcPrefix = ",\"crc\":\"";
constexpr std::size_t kCrcHexDigits = 8;
// `,"crc":"xxxxxxxx"}` — the fixed-width tail every line ends with.
constexpr std::size_t kCrcTailSize =
    kCrcPrefix.size() + kCrcHexDigits + 2 /* "} */;

std::uint64_t WallClockMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string FormatI64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

std::string FormatU64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// Splits a validated line into its tail-CRC and the covered body text
/// (the line with the crc field replaced by the closing brace). Returns
/// false when the line does not end with the fixed-width crc tail.
bool SplitCrcTail(std::string_view line, std::string* body,
                  std::uint32_t* crc) {
  if (line.size() < kCrcTailSize + 1 || line.back() != '}') return false;
  const std::size_t tail_at = line.size() - kCrcTailSize;
  if (line.substr(tail_at, kCrcPrefix.size()) != kCrcPrefix) return false;
  const std::string hex(line.substr(tail_at + kCrcPrefix.size(),
                                    kCrcHexDigits));
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(hex.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return false;
  *crc = static_cast<std::uint32_t>(parsed);
  body->assign(line.substr(0, tail_at));
  body->push_back('}');
  return true;
}

// ---- line parsing -----------------------------------------------------------

/// Scans one raw JSON value starting at `pos` (first non-space char) and
/// returns one past its end, honouring strings, escapes, and nesting. The
/// writer only emits scalars and flat arrays, but the scanner is general so
/// a hand-edited file degrades to a dropped line, not a misparse.
std::size_t SkipValue(std::string_view s, std::size_t pos) {
  int depth = 0;
  bool in_string = false;
  for (; pos < s.size(); ++pos) {
    const char c = s[pos];
    if (in_string) {
      if (c == '\\') {
        ++pos;
      } else if (c == '"') {
        in_string = false;
        if (depth == 0) return pos + 1;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '[':
      case '{':
        ++depth;
        break;
      case ']':
      case '}':
        if (depth == 0) return pos;  // enclosing object's closer
        if (--depth == 0) return pos + 1;
        break;
      case ',':
        if (depth == 0) return pos;
        break;
      default:
        break;
    }
  }
  return pos;
}

/// Parses the flat `"key":value` members of one object line into `out`.
/// Returns false on malformed syntax.
bool ParseMembers(
    std::string_view body,
    std::vector<std::pair<std::string, std::string>>* out) {
  if (body.size() < 2 || body.front() != '{' || body.back() != '}') {
    return false;
  }
  std::size_t pos = 1;
  const std::size_t end = body.size() - 1;
  while (pos < end) {
    if (body[pos] == ',') {
      ++pos;
      continue;
    }
    if (body[pos] != '"') return false;
    const std::size_t key_end = SkipValue(body, pos);
    if (key_end <= pos + 1 || key_end > end || body[key_end] != ':') {
      return false;
    }
    std::string key(body.substr(pos + 1, key_end - pos - 2));
    const std::size_t value_begin = key_end + 1;
    const std::size_t value_end = SkipValue(body, value_begin);
    if (value_end <= value_begin || value_end > end) return false;
    out->emplace_back(std::move(key),
                      std::string(body.substr(value_begin,
                                              value_end - value_begin)));
    pos = value_end;
  }
  return true;
}

/// Validates one line (tail CRC) and decodes it. Returns false on any
/// corruption — the caller treats that as the end of the valid prefix.
bool DecodeLine(const std::string& line, LedgerEvent* event) {
  std::string body;
  std::uint32_t stored_crc = 0;
  if (!SplitCrcTail(line, &body, &stored_crc)) return false;
  if (util::Crc32(body.data(), body.size()) != stored_crc) return false;

  std::vector<std::pair<std::string, std::string>> members;
  if (!ParseMembers(body, &members)) return false;
  event->fields.clear();
  event->raw = line;
  for (auto& [key, value] : members) {
    if (key == "seq") {
      event->seq = static_cast<std::int64_t>(std::strtoll(value.c_str(),
                                                          nullptr, 10));
    } else if (key == "t") {
      event->t_us = static_cast<std::uint64_t>(std::strtoull(value.c_str(),
                                                             nullptr, 10));
    } else if (key == "type") {
      if (value.size() < 2 || value.front() != '"' || value.back() != '"') {
        return false;
      }
      event->type = value.substr(1, value.size() - 2);
    } else {
      event->fields.emplace_back(std::move(key), std::move(value));
    }
  }
  return !event->type.empty();
}

}  // namespace

std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string BuildFlagsString() {
  std::string flags;
#if defined(TFMAE_OBS_ENABLED)
  flags += "obs=on";
#else
  flags += "obs=off";
#endif
#if defined(TFMAE_FAULTS_ENABLED)
  flags += ",faults=on";
#else
  flags += ",faults=off";
#endif
#if defined(NDEBUG)
  flags += ",assertions=off";
#else
  flags += ",assertions=on";
#endif
  return flags;
}

// ---- LedgerEvent ------------------------------------------------------------

const std::string* LedgerEvent::Field(std::string_view key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

double LedgerEvent::Number(std::string_view key, double fallback) const {
  const std::string* raw_value = Field(key);
  if (raw_value == nullptr || raw_value->empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw_value->c_str(), &end);
  return end == raw_value->c_str() ? fallback : v;
}

std::string LedgerEvent::Text(std::string_view key) const {
  const std::string* raw_value = Field(key);
  if (raw_value == nullptr || raw_value->size() < 2 ||
      raw_value->front() != '"' || raw_value->back() != '"') {
    return "";
  }
  // Undo JsonQuote's escapes (\" \\ \u00xx).
  std::string out;
  out.reserve(raw_value->size() - 2);
  for (std::size_t i = 1; i + 1 < raw_value->size(); ++i) {
    char c = (*raw_value)[i];
    if (c == '\\' && i + 2 < raw_value->size()) {
      const char next = (*raw_value)[i + 1];
      if (next == 'u' && i + 6 < raw_value->size()) {
        out.push_back(static_cast<char>(
            std::strtoul(raw_value->substr(i + 2, 4).c_str(), nullptr, 16)));
        i += 5;
        continue;
      }
      c = next;
      ++i;
    }
    out.push_back(c);
  }
  return out;
}

std::vector<std::uint64_t> LedgerEvent::U64Array(std::string_view key) const {
  std::vector<std::uint64_t> out;
  const std::string* raw_value = Field(key);
  if (raw_value == nullptr || raw_value->size() < 2 ||
      raw_value->front() != '[') {
    return out;
  }
  const char* p = raw_value->c_str() + 1;
  while (*p != '\0' && *p != ']') {
    char* end = nullptr;
    out.push_back(std::strtoull(p, &end, 10));
    if (end == p) break;
    p = end;
    if (*p == ',') ++p;
  }
  return out;
}

// ---- reading ----------------------------------------------------------------

std::optional<LedgerFile> ReadLedger(const std::string& path,
                                     std::string* error) {
  std::string actual = path;
  std::ifstream in(actual, std::ios::binary);
  if (!in) {
    actual = path + ".partial";
    in.open(actual, std::ios::binary);
  }
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path + " (or .partial)";
    return std::nullopt;
  }

  LedgerFile file;
  file.path = actual;
  std::uint32_t chain = 0;
  bool have_manifest = false;
  bool stopped = false;
  std::string line;
  LedgerEvent footer;
  bool have_footer = false;
  std::uint32_t chain_before_footer = 0;
  while (std::getline(in, line)) {
    // getline strips '\n'; a torn final line without one is indistinguishable
    // here, but its CRC tail will be missing or wrong, so it is dropped.
    if (stopped) {
      ++file.dropped_lines;
      continue;
    }
    LedgerEvent event;
    if (!DecodeLine(line, &event)) {
      ++file.dropped_lines;
      stopped = true;  // append-only stream: everything after is suspect
      continue;
    }
    if (!have_manifest) {
      if (event.type != "manifest") {
        if (error != nullptr) *error = actual + ": first line is not a manifest";
        return std::nullopt;
      }
      file.manifest = std::move(event);
      have_manifest = true;
    } else if (event.type == "footer") {
      footer = std::move(event);
      have_footer = true;
      chain_before_footer = chain;
      // A footer should be last; any validated line after it voids the seal.
    } else {
      if (have_footer) have_footer = false;
      file.events.push_back(std::move(event));
    }
    chain = util::Crc32(line.data(), line.size(), chain);
    chain = util::Crc32("\n", 1, chain);
  }
  if (!have_manifest) {
    if (error != nullptr) *error = actual + ": no valid manifest line";
    return std::nullopt;
  }
  if (have_footer) {
    const auto expected_events =
        static_cast<std::int64_t>(footer.Number("events", -1.0));
    std::uint32_t expected_chain = 0;
    const std::string chain_text = footer.Text("chain_crc");
    if (!chain_text.empty()) {
      expected_chain = static_cast<std::uint32_t>(
          std::strtoul(chain_text.c_str(), nullptr, 16));
    }
    file.sealed =
        expected_events == static_cast<std::int64_t>(file.events.size()) &&
        expected_chain == chain_before_footer && file.dropped_lines == 0;
  }
  return file;
}

std::string CanonicalEventStream(const LedgerFile& file) {
  std::string out;
  for (const LedgerEvent& event : file.events) {
    out += "{\"seq\":";
    out += FormatI64(event.seq);
    out += ",\"type\":\"";
    out += event.type;
    out += '"';
    for (const auto& [key, value] : event.fields) {
      // "t_"-prefixed fields are wall-clock measurements (e.g. the plan
      // event's t_capture_ms); like "t", they are excluded from the
      // thread-count-invariant canonical stream.
      if (key.rfind("t_", 0) == 0) continue;
      out += ",\"";
      out += key;
      out += "\":";
      out += value;
    }
    out += "}\n";
  }
  return out;
}

// ---- Ledger (writer) --------------------------------------------------------

Ledger::~Ledger() { Abandon(); }

Ledger& Ledger::Instance() {
  static Ledger* ledger = new Ledger();  // leaked, like the metrics registry
  return *ledger;
}

bool Ledger::IsOpen() const {
  return open_.load(std::memory_order_relaxed);
}

std::int64_t Ledger::events_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

bool Ledger::Open(const std::string& path, const RunManifest& manifest) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    Log(LogLevel::kWarning,
        "ledger: Open(" + path + ") while a run is already open — ignored");
    return false;
  }
  const std::string partial = path + ".partial";
  std::FILE* f = std::fopen(partial.c_str(), "wb");
  if (f == nullptr) {
    Log(LogLevel::kWarning, "ledger: cannot open " + partial);
    return false;
  }
  file_ = f;
  final_path_ = path;
  partial_path_ = partial;
  next_seq_ = 0;
  events_ = 0;
  chain_crc_ = 0;

  std::string body;
  body += "\"tool\":" + JsonQuote(manifest.tool);
  body += ",\"run_id\":" + JsonQuote(manifest.run_id);
  body += ",\"seed\":" + FormatU64(manifest.seed);
  char crc_buf[16];
  std::snprintf(crc_buf, sizeof(crc_buf), "\"0x%08x\"", manifest.config_crc);
  body += ",\"config_crc\":";
  body += crc_buf;
  body += ",\"num_threads\":" + FormatI64(manifest.num_threads);
  body += ",\"build_flags\":" + JsonQuote(manifest.build_flags);
  for (const auto& [key, value] : manifest.extra) {
    body += ",\"" + key + "\":" + JsonQuote(value);
  }
  --events_;  // the manifest line is not an event
  WriteLine("manifest", body);
  open_.store(true, std::memory_order_relaxed);
  return true;
}

void Ledger::WriteLine(const char* type, const std::string& body_fields) {
  // Caller holds mu_ or is Open() itself; file_ is non-null.
  std::string body = "{\"seq\":" + FormatI64(next_seq_) +
                     ",\"t\":" + FormatU64(WallClockMicros()) +
                     ",\"type\":\"" + type + "\"";
  if (!body_fields.empty()) {
    body += ',';
    body += body_fields;
  }
  body += '}';
  const std::uint32_t crc = util::Crc32(body.data(), body.size());
  char tail[24];
  std::snprintf(tail, sizeof(tail), ",\"crc\":\"%08x\"}", crc);
  body.erase(body.size() - 1);  // swap the closing brace for the crc tail
  body += tail;
  body += '\n';
  std::fwrite(body.data(), 1, body.size(), file_);
  std::fflush(file_);  // each line survives a process kill
  chain_crc_ = util::Crc32(body.data(), body.size(), chain_crc_);
  ++next_seq_;
  ++events_;
  FlightRecorder::Instance().NoteLedgerLine(type, body);
}

void Ledger::Event(
    const char* type,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::string body;
  for (const auto& [key, value] : fields) {
    if (!body.empty()) body += ',';
    body += '"' + key + "\":" + value;
  }
  WriteLine(type, body);
}

void Ledger::Step(std::int64_t step, double loss, double grad_norm,
                  double lr) {
  Event("step", {{"step", FormatI64(step)},
                 {"loss", FormatDouble(loss)},
                 {"grad_norm", FormatDouble(grad_norm)},
                 {"lr", FormatDouble(lr)}});
}

void Ledger::GuardTrip(std::int64_t step, const char* kind, double loss,
                       double lr_after) {
  Event("guard_trip", {{"step", FormatI64(step)},
                       {"kind", JsonQuote(kind)},
                       {"loss", FormatDouble(loss)},
                       {"lr_after", FormatDouble(lr_after)}});
}

void Ledger::GuardGiveUp(std::int64_t step, std::int64_t consecutive_skips) {
  Event("guard_give_up",
        {{"step", FormatI64(step)},
         {"consecutive_skips", FormatI64(consecutive_skips)}});
}

void Ledger::CheckpointWrite(std::int64_t step, const std::string& file,
                             bool ok) {
  Event("checkpoint_write", {{"step", FormatI64(step)},
                             {"file", JsonQuote(file)},
                             {"ok", ok ? "true" : "false"}});
}

void Ledger::EpochEnd(std::int64_t epoch, double mean_loss,
                      std::int64_t steps) {
  Event("epoch_end", {{"epoch", FormatI64(epoch)},
                      {"mean_loss", FormatDouble(mean_loss)},
                      {"steps", FormatI64(steps)}});
}

void Ledger::MaskingStats(std::int64_t windows, std::int64_t window_len,
                          std::int64_t masked_steps, std::int64_t total_steps,
                          std::int64_t masked_bins) {
  Event("masking_stats", {{"windows", FormatI64(windows)},
                          {"window_len", FormatI64(window_len)},
                          {"masked_steps", FormatI64(masked_steps)},
                          {"total_steps", FormatI64(total_steps)},
                          {"masked_frequency_bins", FormatI64(masked_bins)}});
}

void Ledger::ScoreHistogram(const char* name, double lo, double hi,
                            std::uint64_t count,
                            const std::vector<std::uint64_t>& buckets) {
  std::string array = "[";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (i > 0) array += ',';
    array += FormatU64(buckets[i]);
  }
  array += ']';
  Event("score_histogram", {{"name", JsonQuote(name)},
                            {"lo", FormatDouble(lo)},
                            {"hi", FormatDouble(hi)},
                            {"count", FormatU64(count)},
                            {"buckets", array}});
}

void Ledger::StreamEvent(const char* what, std::int64_t index, double score) {
  Event("stream", {{"what", JsonQuote(what)},
                   {"index", FormatI64(index)},
                   {"score", FormatDouble(score)}});
}

bool Ledger::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return false;
  char chain_buf[16];
  std::snprintf(chain_buf, sizeof(chain_buf), "\"%08x\"", chain_crc_);
  std::string body = "\"events\":" + FormatI64(events_) +
                     ",\"chain_crc\":" + chain_buf;
  --events_;  // the footer is not an event either
  WriteLine("footer", body);
  bool ok = std::fflush(file_) == 0;
  ok = ::fsync(::fileno(file_)) == 0 && ok;
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  open_.store(false, std::memory_order_relaxed);
  if (ok) {
    std::error_code ec;
    std::filesystem::rename(partial_path_, final_path_, ec);
    ok = !ec;
  }
  if (!ok) {
    Log(LogLevel::kWarning,
        "ledger: failed to seal " + final_path_ + " (partial left at " +
            partial_path_ + ")");
  }
  return ok;
}

void Ledger::Abandon() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
  open_.store(false, std::memory_order_relaxed);
}

}  // namespace tfmae::obs
