// Process-wide metrics registry: counters, gauges, and log-bucketed
// histograms with a lock-free fast path.
//
// This is the substrate of the observability layer documented in
// docs/OBSERVABILITY.md. Design goals, in order:
//
//  1. Determinism: updates land in per-thread shards and are merged in
//     shard-creation (index) order at snapshot time. Counter and histogram
//     cells are unsigned integers, so merged totals are exact and identical
//     at every `TFMAE_NUM_THREADS` setting — dumps of count-typed metrics
//     are bitwise-stable under the PR-1 threading contract.
//  2. Lock-free fast path: a recording thread touches only its own shard
//     with relaxed atomic adds (the atomicity is for the concurrent reader,
//     not for contention — shards are never written by two threads). The
//     registry mutex is taken only on the rare paths: metric registration,
//     shard acquisition/release, snapshot, and reset.
//  3. Bounded memory: shards of exited threads are parked on a free list
//     (their accumulated counts are retained) and handed to the next new
//     thread, so sweeping thread-pool sizes does not grow the registry.
//
// Naming contract (see docs/OBSERVABILITY.md): `subsystem.op.stat`, e.g.
// `tensor.gemm.flops`, `core.streaming.push.time_ns`. Registration is
// idempotent — looking up an existing name returns the existing id.
//
// The registry is always compiled; only the instrumentation macros in
// obs/trace.h compile away in non-observability builds.
#ifndef TFMAE_OBS_METRICS_H_
#define TFMAE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace tfmae::obs {

/// Hard caps on distinct metrics. Shards preallocate these, keeping the
/// fast path a bare indexed atomic add. Registration past a cap returns
/// kInvalidMetricId (recording against it is a no-op) and bumps the
/// `obs.registry.overflow` counter — instrumentation must never be able to
/// abort the instrumented process. Raise the constant if a legitimate
/// workload overflows; it is a compile-time budget, not a tunable.
/// (Raised for the live serving plane: `serve.stage.*` timelines, SLO
/// breach counters, and the drift monitor all register at serving start.)
constexpr int kMaxCounters = 384;
constexpr int kMaxGauges = 96;
constexpr int kMaxHistograms = 128;

/// Sentinel returned by CounterId/GaugeId/HistogramId when the table is
/// full. All recording paths treat it (and any negative id) as "drop the
/// sample".
constexpr int kInvalidMetricId = -1;

/// Histogram bucketing: fixed log2 buckets. Bucket 0 holds value 0; bucket
/// b >= 1 holds values in [2^(b-1), 2^b). With 64 buckets any uint64 value
/// (nanoseconds, bytes, counts) maps to a bucket; resolution is a factor of
/// two, which is enough to read latency orders of magnitude off a dump.
constexpr int kHistogramBuckets = 64;

/// Bucket index for a recorded value (shape of the mapping is part of the
/// exporter contract; see docs/OBSERVABILITY.md).
int HistogramBucket(std::uint64_t value);

/// Inclusive upper bound of bucket b (2^b - 1; bucket 0 -> 0).
std::uint64_t HistogramBucketUpperBound(int bucket);

/// Merged view of one histogram.
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::uint64_t buckets[kHistogramBuckets] = {};

  double Mean() const;
  /// Upper-bound estimate of the p-quantile (p in [0,1]) from the bucket
  /// CDF; exact to within the factor-2 bucket resolution.
  double Percentile(double p) const;
  /// Interpolated estimate of the p-quantile: locates the bucket holding
  /// the p-th sample and interpolates log-linearly inside it (bucket b >= 1
  /// spans [2^(b-1), 2^b), so the interpolated value is 2^(b-1+f)), clamped
  /// to the observed [min, max]. Smoother than Percentile() for dashboards
  /// and the bench gate; same determinism (pure function of the buckets).
  double Quantile(double p) const;
};

/// Merged view of the whole registry, ordered by metric name (byte-wise),
/// so two snapshots of identical metric state serialize identically
/// regardless of registration interleaving.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by full name; 0 if absent.
  std::uint64_t Counter(std::string_view name) const;
  /// Histogram by full name; nullptr if absent.
  const HistogramSnapshot* Histogram(std::string_view name) const;
};

/// The process-wide registry. All members are safe to call from any thread.
class Registry {
 public:
  /// Lazily created, intentionally leaked singleton (worker threads may
  /// record during static destruction).
  static Registry& Instance();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // ---- Registration (slow path; call once per site, cache the id) ---------
  // Return kInvalidMetricId (and bump `obs.registry.overflow`) when the
  // corresponding table is full; recording against the sentinel is a no-op.

  int CounterId(std::string_view name);
  int GaugeId(std::string_view name);
  int HistogramId(std::string_view name);

  // ---- Recording (fast path) ----------------------------------------------

  /// Adds `delta` to counter `id` in the calling thread's shard.
  void CounterAdd(int id, std::uint64_t delta);

  /// Records one sample into histogram `id` in the calling thread's shard.
  void HistogramRecord(int id, std::uint64_t value);

  /// Sets gauge `id` (last write wins; gauges are global, not sharded).
  void GaugeSet(int id, std::int64_t value);

  /// Raises gauge `id` to `value` if larger (monotone high-watermark).
  void GaugeMax(int id, std::int64_t value);

  // ---- Reading ------------------------------------------------------------

  /// Merges all shards (in shard index order) into a name-sorted snapshot.
  MetricsSnapshot Snapshot() const;

  /// Merged value of one counter by name (0 if unregistered).
  std::uint64_t CounterValue(std::string_view name) const;

  /// Zeroes every shard cell and gauge. Metric registrations (names/ids)
  /// are retained. Must not race recording threads that are mid-update if
  /// exact zeroing is required; intended for bench/test section boundaries.
  void Reset();

  /// One thread's private slice of the registry (definition internal to
  /// metrics.cc; exposed here only so the shard-lifecycle helpers can name
  /// it).
  struct Shard;

 private:
  Registry() = default;

  Shard* AcquireShard();
  void ReleaseShard(Shard* shard);
  Shard* LocalShard();

  friend struct ShardReleaser;  // returns shards to the free list at thread exit
};

}  // namespace tfmae::obs

#endif  // TFMAE_OBS_METRICS_H_
