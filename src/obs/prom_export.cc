#include "obs/prom_export.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "obs/export.h"

namespace tfmae::obs {
namespace {

constexpr std::string_view kPrefix = "tfmae_";

bool PromNameByte(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

/// `# HELP`/`# TYPE` header for one family. The HELP text carries the
/// original dotted registry name (backslash/newline escaped per the format,
/// though registry names never contain either).
void AppendHeader(std::string* out, const std::string& family,
                  const char* type, std::string_view original) {
  out->append("# HELP ").append(family).append(" tfmae ").append(type);
  out->push_back(' ');
  for (char c : original) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
  out->push_back('\n');
  out->append("# TYPE ").append(family).append(" ").append(type).push_back(
      '\n');
}

void AppendHistogram(std::string* out, const HistogramSnapshot& h) {
  const std::string family = std::string(kPrefix) + PromMetricName(h.name);
  AppendHeader(out, family, "histogram", h.name);
  // Cumulative buckets up to the highest populated one (every higher
  // bucket's cumulative count equals `_count`, which `+Inf` states), so a
  // 64-bucket histogram with all mass under a millisecond does not emit 40
  // empty trailing series per scrape.
  int top = -1;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    if (h.buckets[b] != 0) top = b;
  }
  std::uint64_t cumulative = 0;
  for (int b = 0; b <= top; ++b) {
    cumulative += h.buckets[b];
    out->append(family).append("_bucket{le=\"");
    AppendU64(out, HistogramBucketUpperBound(b));
    out->append("\"} ");
    AppendU64(out, cumulative);
    out->push_back('\n');
  }
  out->append(family).append("_bucket{le=\"+Inf\"} ");
  AppendU64(out, h.count);
  out->push_back('\n');
  out->append(family).append("_sum ");
  AppendU64(out, h.sum);
  out->push_back('\n');
  out->append(family).append("_count ");
  AppendU64(out, h.count);
  out->push_back('\n');
}

}  // namespace

std::string PromMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out.push_back('_');
  }
  for (char c : name) {
    out.push_back(PromNameByte(c) ? c : '_');
  }
  return out;
}

std::string PromEscapeLabel(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string RenderPrometheusText(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(4096);
  for (const auto& [name, value] : snap.counters) {
    const std::string family =
        std::string(kPrefix) + PromMetricName(name) + "_total";
    AppendHeader(&out, family, "counter", name);
    out.append(family).push_back(' ');
    AppendU64(&out, value);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string family = std::string(kPrefix) + PromMetricName(name);
    AppendHeader(&out, family, "gauge", name);
    out.append(family).push_back(' ');
    AppendI64(&out, value);
    out.push_back('\n');
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    AppendHistogram(&out, h);
  }
  return out;
}

std::string RenderPrometheusText() {
  return RenderPrometheusText(SnapshotWithFaults());
}

}  // namespace tfmae::obs
