#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

namespace tfmae::obs {
namespace {

bool EnvEnabled() {
  const char* v = std::getenv("TFMAE_OBS");
  if (v == nullptr) return false;
  return std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0 ||
         std::strcmp(v, "on") == 0;
}

std::chrono::steady_clock::time_point ProcessOrigin() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return origin;
}

/// Per-thread capture buffer. Owned by the global tracing state (events
/// must outlive the thread that produced them); threads hold only a
/// pointer.
struct EventBuffer {
  int thread_index = 0;
  std::size_t capacity = 0;
  std::vector<TraceEvent> events;
};

struct TracingState {
  std::mutex mu;
  std::atomic<bool> active{false};
  std::atomic<std::uint64_t> dropped{0};
  std::size_t capacity = std::size_t{1} << 16;
  /// Generation counter: bumped by ClearTraceEvents so threads drop stale
  /// buffer pointers.
  std::uint64_t generation = 1;
  std::vector<EventBuffer*> buffers;  // creation order = thread index order
};

TracingState& Tracing() {
  static TracingState* state = new TracingState();
  return *state;
}

struct SiteState {
  std::mutex mu;
  // Keyed by name so repeated GetTraceSite("x") from different translation
  // units share one site (and one set of metric ids).
  std::unordered_map<std::string, TraceSite*> sites;
  // Autograd per-op counter ids, cached by pointer identity (op names are
  // string literals with process lifetime).
  std::unordered_map<const char*, std::pair<int, int>> autograd_ids;
};

SiteState& Sites() {
  static SiteState* state = new SiteState();
  return *state;
}

EventBuffer* LocalEventBuffer() {
  thread_local EventBuffer* buffer = nullptr;
  thread_local std::uint64_t buffer_generation = 0;
  TracingState& tr = Tracing();
  std::lock_guard<std::mutex> lock(tr.mu);
  if (buffer == nullptr || buffer_generation != tr.generation) {
    auto* b = new EventBuffer();
    b->thread_index = static_cast<int>(tr.buffers.size());
    b->capacity = tr.capacity;
    b->events.reserve(b->capacity);
    tr.buffers.push_back(b);
    buffer = b;
    buffer_generation = tr.generation;
  }
  return buffer;
}

}  // namespace

namespace internal {
std::atomic<bool> g_enabled{EnvEnabled()};
}  // namespace internal

void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ProcessOrigin())
          .count());
}

TraceSite* GetTraceSite(const char* name) {
  SiteState& st = Sites();
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.sites.find(name);
  if (it != st.sites.end()) return it->second;
  auto* site = new TraceSite();  // process lifetime, like the registry
  site->name = name;
  Registry& reg = Registry::Instance();
  const std::string base(name);
  site->hist_time_ns = reg.HistogramId(base + ".time_ns");
  site->counter_calls = reg.CounterId(base + ".calls");
  site->counter_total = reg.CounterId(base + ".total_ns");
  st.sites.emplace(base, site);
  return site;
}

void ScopedTrace::Record() {
  const std::uint64_t end = NowNs();
  const std::uint64_t dur = end - start_;
  Registry& reg = Registry::Instance();
  reg.HistogramRecord(site_->hist_time_ns, dur);
  reg.CounterAdd(site_->counter_calls, 1);
  reg.CounterAdd(site_->counter_total, dur);
  TracingState& tr = Tracing();
  if (tr.active.load(std::memory_order_relaxed)) {
    EventBuffer* buffer = LocalEventBuffer();
    if (buffer->events.size() < buffer->capacity) {
      buffer->events.push_back(TraceEvent{site_, start_, dur});
    } else {
      tr.dropped.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void AppendTraceEvent(const TraceSite* site, std::uint64_t start_ns,
                      std::uint64_t dur_ns) {
  TracingState& tr = Tracing();
  if (!tr.active.load(std::memory_order_relaxed)) return;
  EventBuffer* buffer = LocalEventBuffer();
  if (buffer->events.size() < buffer->capacity) {
    buffer->events.push_back(TraceEvent{site, start_ns, dur_ns});
  } else {
    tr.dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

void AutogradRecord(const char* op, std::uint64_t self_ns) {
  int self_id;
  int calls_id;
  {
    SiteState& st = Sites();
    std::lock_guard<std::mutex> lock(st.mu);
    auto it = st.autograd_ids.find(op);
    if (it == st.autograd_ids.end()) {
      Registry& reg = Registry::Instance();
      const std::string base = std::string("autograd.") + op;
      it = st.autograd_ids
               .emplace(op, std::make_pair(reg.CounterId(base + ".self_ns"),
                                           reg.CounterId(base + ".calls")))
               .first;
    }
    self_id = it->second.first;
    calls_id = it->second.second;
  }
  Registry& reg = Registry::Instance();
  reg.CounterAdd(self_id, self_ns);
  reg.CounterAdd(calls_id, 1);
}

void StartTracing(std::size_t max_events_per_thread) {
  TracingState& tr = Tracing();
  std::lock_guard<std::mutex> lock(tr.mu);
  tr.capacity = max_events_per_thread == 0 ? 1 : max_events_per_thread;
  tr.active.store(true, std::memory_order_relaxed);
}

void StopTracing() {
  Tracing().active.store(false, std::memory_order_relaxed);
}

bool TracingActive() {
  return Tracing().active.load(std::memory_order_relaxed);
}

std::vector<std::pair<int, TraceEvent>> CollectTraceEvents() {
  TracingState& tr = Tracing();
  std::lock_guard<std::mutex> lock(tr.mu);
  std::vector<std::pair<int, TraceEvent>> out;
  for (const EventBuffer* buffer : tr.buffers) {
    for (const TraceEvent& e : buffer->events) {
      out.emplace_back(buffer->thread_index, e);
    }
  }
  return out;
}

void ClearTraceEvents() {
  TracingState& tr = Tracing();
  std::lock_guard<std::mutex> lock(tr.mu);
  // Buffers are abandoned (leaked by design, like the registry): a thread
  // mid-Record may still hold a pointer into the old generation, and the
  // few megabytes at stake do not justify a hazard scheme. New records go
  // to fresh buffers.
  tr.buffers.clear();
  ++tr.generation;
  tr.dropped.store(0, std::memory_order_relaxed);
}

std::uint64_t DroppedTraceEvents() {
  return Tracing().dropped.load(std::memory_order_relaxed);
}

}  // namespace tfmae::obs
