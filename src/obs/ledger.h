// Append-only JSONL run ledger — the durable layer of the observability
// plane (docs/OBSERVABILITY.md, "Run ledger & flight recorder").
//
// The metrics registry (obs/metrics.h) answers "what is this process doing
// right now"; the ledger answers "what did this run do, step by step", so
// loss curves, guard interventions, and score distributions can be compared
// across commits long after the process exited. One ledger file is one run:
//
//   line 0:  manifest  — who produced the run (tool, run id, seed, config
//                        CRC, thread count, build flags)
//   line 1+: events    — typed records: per-step loss/grad-norm/LR, numeric
//                        guard trips, checkpoint writes, per-epoch means,
//                        masking statistics, end-of-run score histograms,
//                        streaming alerts/quarantines
//   last:    footer    — event count + chained CRC over every prior line,
//                        written by Close(), which then atomically renames
//                        the working file over the final path
//
// Integrity discipline (the util/checkpoint_file contract, adapted to an
// append-only stream):
//  * While a run is live, lines are appended (and flushed per line) to
//    "<path>.partial". A killed run therefore leaves a readable prefix.
//  * Every line carries its own CRC-32 ("crc" field, computed over the line
//    text with the crc field removed), so the reader validates each line
//    independently and stops at the first torn or corrupted one: what it
//    returns is always a CRC-valid prefix.
//  * Close() seals the stream with a footer carrying the event count and a
//    chained CRC over all preceding line bytes, then renames the .partial
//    over `path` — a sealed ledger at the final path is complete by
//    construction.
//
// Determinism contract: every event field except the wall-clock timestamp
// "t" — and fields whose keys start with "t_", the convention for other
// wall-clock measurements such as the plan event's t_capture_ms — must be
// bitwise thread-count-invariant, exactly like count-typed metrics
// (DESIGN.md §7). CanonicalEventStream() strips "t" and "t_*" (and the
// per-line CRCs, which cover them); two runs of the same (data, config,
// seed) produce byte-identical canonical streams at any TFMAE_NUM_THREADS.
//
// Gating matches the instrumentation macros: the Ledger class itself is
// always compiled (tools and tests link it in any build), but the emission
// sites inside TfmaeDetector::Fit/Score, the streaming loop, and the
// numeric guard are compiled out unless -DTFMAE_OBS=ON and further gated at
// runtime on a ledger actually being open — see LedgerActive().
#ifndef TFMAE_OBS_LEDGER_H_
#define TFMAE_OBS_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tfmae::obs {

/// Compile-time switches baked into this binary, as a stable string for the
/// manifest (e.g. "obs=on,faults=off").
std::string BuildFlagsString();

/// JSON string escaping for event text values. Ledger::Event writes field
/// values verbatim, so every string-typed value must pass through this (or
/// LedgerEvent::Text reads it back as "").
std::string JsonQuote(std::string_view s);

/// Identity of one run, written as the ledger's first line.
struct RunManifest {
  std::string tool;       ///< producing binary or component name
  std::string run_id;     ///< caller-chosen identifier
  std::uint64_t seed = 0; ///< RNG seed of the run (0 = not applicable)
  std::uint32_t config_crc = 0;  ///< CRC-32 of the config text (0 = n/a)
  int num_threads = 0;    ///< resolved TFMAE_NUM_THREADS worker count
  std::string build_flags;       ///< BuildFlagsString() of the producer
  /// Extra key/value pairs (values are written as JSON strings).
  std::vector<std::pair<std::string, std::string>> extra;
};

/// One decoded ledger line. `fields` preserves emission order; values are
/// the raw JSON literal text ("1.5", "\"path\"", "[1,2]").
struct LedgerEvent {
  std::int64_t seq = 0;
  std::uint64_t t_us = 0;  ///< wall-clock microseconds since the Unix epoch
  std::string type;
  std::vector<std::pair<std::string, std::string>> fields;
  std::string raw;  ///< the full line as stored (including crc), no '\n'

  /// Raw JSON value of `key` (nullptr when absent).
  const std::string* Field(std::string_view key) const;
  /// Numeric value of `key` (`fallback` when absent or non-numeric).
  double Number(std::string_view key, double fallback = 0.0) const;
  /// Unquoted string value of `key` ("" when absent).
  std::string Text(std::string_view key) const;
  /// Unsigned bucket counts of an array-valued `key` (empty when absent).
  std::vector<std::uint64_t> U64Array(std::string_view key) const;
};

/// A fully validated ledger read back from disk.
struct LedgerFile {
  LedgerEvent manifest;             ///< the manifest line
  std::vector<LedgerEvent> events;  ///< every event line, in order
  bool sealed = false;     ///< footer present, chain CRC and count valid
  std::int64_t dropped_lines = 0;  ///< torn/corrupt tail lines discarded
  std::string path;        ///< file actually read (may be the .partial)

  /// Manifest convenience accessors.
  std::string Tool() const { return manifest.Text("tool"); }
  std::string RunId() const { return manifest.Text("run_id"); }
  int NumThreads() const {
    return static_cast<int>(manifest.Number("num_threads"));
  }
};

/// Opens `path` (falling back to "<path>.partial" so crashed runs stay
/// readable), validates every line CRC, and returns the valid prefix.
/// nullopt (with a reason in *error) only when no line at all can be read —
/// a corrupt tail degrades to a shorter prefix, not a failure.
std::optional<LedgerFile> ReadLedger(const std::string& path,
                                     std::string* error = nullptr);

/// The determinism view: every event line (manifest and footer excluded)
/// with the "t" timestamp and "crc" fields stripped, newline-separated.
/// Byte-identical across thread counts for a deterministic run.
std::string CanonicalEventStream(const LedgerFile& file);

/// The run ledger writer. All emitters are thread-safe and no-ops while the
/// ledger is closed, so instrumented code never checks state first (the
/// compile-time gate lives at the call sites; see LedgerActive()).
class Ledger {
 public:
  Ledger() = default;
  ~Ledger();
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// The process-wide ledger the instrumented call sites emit into.
  /// (Intentionally leaked, like the metrics registry.)
  static Ledger& Instance();

  /// Starts a run: opens "<path>.partial" for writing and emits the
  /// manifest. Returns false (ledger stays closed) on I/O failure or when a
  /// run is already open.
  bool Open(const std::string& path, const RunManifest& manifest);

  /// True between a successful Open() and Close()/Abandon().
  bool IsOpen() const;

  // ---- Typed events (no-ops while closed) ---------------------------------

  /// One optimizer step: Eq. (15) loss, global gradient L2 norm, LR.
  void Step(std::int64_t step, double loss, double grad_norm, double lr);
  /// Numeric-guard intervention (`kind`: "nonfinite_loss"/"nonfinite_grad").
  void GuardTrip(std::int64_t step, const char* kind, double loss,
                 double lr_after);
  /// Numeric guard exhausted its skip budget; training stops.
  void GuardGiveUp(std::int64_t step, std::int64_t consecutive_skips);
  /// Periodic training checkpoint written (or attempted).
  void CheckpointWrite(std::int64_t step, const std::string& file, bool ok);
  /// End-of-epoch summary.
  void EpochEnd(std::int64_t epoch, double mean_loss, std::int64_t steps);
  /// One-time masking statistics of the prepared training windows.
  void MaskingStats(std::int64_t windows, std::int64_t window_len,
                    std::int64_t masked_steps, std::int64_t total_steps,
                    std::int64_t masked_bins);
  /// Fixed-width linear histogram of anomaly scores (the Fig. 9 CDF data).
  void ScoreHistogram(const char* name, double lo, double hi,
                      std::uint64_t count,
                      const std::vector<std::uint64_t>& buckets);
  /// Streaming alert/quarantine/rejection record.
  void StreamEvent(const char* what, std::int64_t index, double score);

  /// Generic escape hatch: `fields` are (key, raw JSON literal) pairs in
  /// emission order. Keys "seq"/"t"/"type"/"crc" are reserved.
  void Event(const char* type,
             const std::vector<std::pair<std::string, std::string>>& fields);

  /// Seals the run: footer (event count + chained CRC), flush, fsync, and
  /// atomic rename of the .partial over the final path. Returns false on
  /// I/O failure (the .partial is left for postmortem reading).
  bool Close();

  /// Drops the run without sealing: closes the stream and leaves the
  /// .partial exactly as written so far (what a crash would leave). Used by
  /// tests and the fatal-signal path.
  void Abandon();

  /// Events emitted since Open() (excluding manifest/footer).
  std::int64_t events_written() const;

 private:
  void WriteLine(const char* type, const std::string& body_fields);

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;  // null while closed
  std::string final_path_;
  std::string partial_path_;
  std::int64_t next_seq_ = 0;
  std::int64_t events_ = 0;
  std::uint32_t chain_crc_ = 0;
  // Mirrors file_ != nullptr; readable without mu_ (IsOpen fast path).
  std::atomic_bool open_{false};
};

/// Compile-time + runtime gate for the instrumented emission sites: false
/// unless this build carries instrumentation (-DTFMAE_OBS=ON) AND the
/// process ledger is open. In a default build the surrounding `if` folds
/// away — the hot paths carry zero ledger code, matching the macro contract.
inline bool LedgerActive() {
#if defined(TFMAE_OBS_ENABLED)
  return Ledger::Instance().IsOpen();
#else
  return false;
#endif
}

}  // namespace tfmae::obs

#endif  // TFMAE_OBS_LEDGER_H_
