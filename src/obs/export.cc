#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <iterator>
#include <string_view>
#include <tuple>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "util/fault.h"
#include "util/thread_pool.h"

namespace tfmae::obs {

MetricsSnapshot SnapshotWithFaults() {
  MetricsSnapshot snap = Registry::Instance().Snapshot();
  auto faults = fault::AllCounts();
  if (!faults.empty()) {
    snap.counters.insert(snap.counters.end(),
                         std::make_move_iterator(faults.begin()),
                         std::make_move_iterator(faults.end()));
    std::sort(snap.counters.begin(), snap.counters.end());
  }
  return snap;
}

namespace {

constexpr std::string_view kTotalSuffix = ".total_ns";
constexpr std::string_view kSelfSuffix = ".self_ns";
constexpr std::string_view kAutogradPrefix = "autograd.";

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// (label, time_ns, calls) rows extracted from counter pairs
/// `<base><time_suffix>` / `<base>.calls`, sorted by time descending (ties
/// by name, so the order is deterministic).
std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>> TopTable(
    const MetricsSnapshot& snap, std::string_view prefix,
    std::string_view time_suffix) {
  std::vector<std::tuple<std::string, std::uint64_t, std::uint64_t>> rows;
  for (const auto& [name, value] : snap.counters) {
    if (!EndsWith(name, time_suffix)) continue;
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    std::string base = name.substr(0, name.size() - time_suffix.size());
    const std::uint64_t calls = snap.Counter(base + ".calls");
    rows.emplace_back(std::move(base), value, calls);
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (std::get<1>(a) != std::get<1>(b)) {
      return std::get<1>(a) > std::get<1>(b);
    }
    return std::get<0>(a) < std::get<0>(b);
  });
  return rows;
}

/// Minimal JSON string escaping (metric names are [a-z0-9._] by contract,
/// but don't trust that for correctness of the output document).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void DumpText(std::ostream& os, int top_k) {
  const MetricsSnapshot snap = SnapshotWithFaults();
  os << "== obs: counters ==\n";
  for (const auto& [name, value] : snap.counters) {
    os << "  " << name << " = " << value << "\n";
  }
  os << "== obs: gauges ==\n";
  for (const auto& [name, value] : snap.gauges) {
    os << "  " << name << " = " << value << "\n";
  }
  os << "== obs: histograms (count / mean / p50 / p95 / p99 / max) ==\n";
  for (const HistogramSnapshot& h : snap.histograms) {
    if (h.count == 0) continue;
    os << "  " << h.name << ": " << h.count << " / " << std::fixed
       << std::setprecision(0) << h.Mean() << " / " << h.Quantile(0.5)
       << " / " << h.Quantile(0.95) << " / " << h.Quantile(0.99) << " / "
       << h.max << "\n";
  }

  const auto sites = TopTable(snap, "", kTotalSuffix);
  os << "== obs: top sites by total time ==\n";
  int shown = 0;
  for (const auto& [site, total_ns, calls] : sites) {
    if (shown++ >= top_k) break;
    os << "  " << std::left << std::setw(32) << site << std::right
       << std::setw(12) << std::fixed << std::setprecision(3)
       << static_cast<double>(total_ns) / 1e6 << " ms  " << std::setw(10)
       << calls << " calls\n";
  }

  const auto autograd = TopTable(snap, kAutogradPrefix, kSelfSuffix);
  os << "== obs: top autograd ops by self time ==\n";
  shown = 0;
  for (const auto& [op, self_ns, calls] : autograd) {
    if (shown++ >= top_k) break;
    os << "  " << std::left << std::setw(32)
       << op.substr(kAutogradPrefix.size()) << std::right << std::setw(12)
       << std::fixed << std::setprecision(3)
       << static_cast<double>(self_ns) / 1e6 << " ms  " << std::setw(10)
       << calls << " calls\n";
  }
  os.unsetf(std::ios::fixed);
}

void DumpJsonTo(std::ostream& os) {
  const MetricsSnapshot snap = SnapshotWithFaults();
  os << "{\n  \"obs_compiled\": " << (CompiledIn() ? "true" : "false")
     << ",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(name)
       << "\": " << value;
    first = false;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  const std::streamsize prec = os.precision();
  for (const HistogramSnapshot& h : snap.histograms) {
    os << (first ? "" : ",") << "\n    \"" << JsonEscape(h.name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"min\": " << h.min << ", \"max\": " << h.max
       << ", \"mean\": " << std::setprecision(6) << h.Mean()
       << ", \"p50\": " << h.Quantile(0.5)
       << ", \"p95\": " << h.Quantile(0.95)
       << ", \"p99\": " << h.Quantile(0.99) << "}";
    os << std::setprecision(static_cast<int>(prec));
    first = false;
  }
  os << "\n  },\n  \"top_sites\": [";
  first = true;
  for (const auto& [site, total_ns, calls] : TopTable(snap, "", ".total_ns")) {
    os << (first ? "" : ",") << "\n    {\"site\": \"" << JsonEscape(site)
       << "\", \"total_ns\": " << total_ns << ", \"calls\": " << calls << "}";
    first = false;
  }
  os << "\n  ],\n  \"autograd_top\": [";
  first = true;
  for (const auto& [op, self_ns, calls] :
       TopTable(snap, "autograd.", ".self_ns")) {
    os << (first ? "" : ",") << "\n    {\"op\": \""
       << JsonEscape(std::string_view(op).substr(9)) // strip "autograd."
       << "\", \"self_ns\": " << self_ns << ", \"calls\": " << calls << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

bool DumpJson(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  DumpJsonTo(out);
  return out.good();
}

bool WriteChromeTrace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const auto events = CollectTraceEvents();
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const auto& [tid, e] : events) {
    // Complete ("X") events; chrome expects microsecond timestamps.
    out << (first ? "" : ",") << "\n  {\"name\": \"" << JsonEscape(e.site->name)
        << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << tid
        << ", \"ts\": " << std::fixed << std::setprecision(3)
        << static_cast<double>(e.start_ns) / 1e3
        << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1e3 << "}";
    first = false;
  }
  out << "\n], \"displayTimeUnit\": \"ms\", \"otherData\": {"
      << "\"dropped_events\": " << DroppedTraceEvents() << "}}\n";
  return out.good();
}

namespace {

// atexit state for MaybeProfileFromArgs (plain statics: written once during
// argument parsing, read once at exit).
std::string* g_json_path = nullptr;
std::string* g_trace_path = nullptr;
bool g_text_dump = false;
bool g_ledger_open = false;

void AtExitDump() {
  if (g_ledger_open && Ledger::Instance().IsOpen()) {
    if (Ledger::Instance().Close()) {
      std::fprintf(stderr, "obs: sealed run ledger\n");
    } else {
      std::fprintf(stderr, "obs: run ledger seal failed (.partial kept)\n");
    }
  }
  if (g_json_path != nullptr) {
    if (!DumpJson(*g_json_path)) {
      std::fprintf(stderr, "obs: cannot write %s\n", g_json_path->c_str());
    } else {
      std::fprintf(stderr, "obs: wrote metrics to %s\n", g_json_path->c_str());
    }
  }
  if (g_trace_path != nullptr) {
    StopTracing();
    if (!WriteChromeTrace(*g_trace_path)) {
      std::fprintf(stderr, "obs: cannot write %s\n", g_trace_path->c_str());
    } else {
      std::fprintf(stderr, "obs: wrote chrome trace to %s\n",
                   g_trace_path->c_str());
    }
  }
  if (g_text_dump) DumpText(std::cerr);
}

}  // namespace

bool MaybeProfileFromArgs(int* argc, char** argv) {
  // Fault-build binaries that use the shared flag glue honour the
  // TFMAE_FAULTS env spec (a no-op in default builds and when unset).
  if (fault::CompiledIn()) fault::ConfigureFromEnv();
  constexpr std::string_view kJson = "--obs_json=";
  constexpr std::string_view kTrace = "--obs_trace=";
  constexpr std::string_view kText = "--obs_text";
  constexpr std::string_view kLedger = "--ledger=";
  constexpr std::string_view kRecorder = "--flight_recorder=";
  std::string ledger_path;
  std::string recorder_path;
  bool any = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(kJson, 0) == 0) {
      g_json_path = new std::string(arg.substr(kJson.size()));
      any = true;
    } else if (arg.rfind(kTrace, 0) == 0) {
      g_trace_path = new std::string(arg.substr(kTrace.size()));
      any = true;
    } else if (arg == kText) {
      g_text_dump = true;
      any = true;
    } else if (arg.rfind(kLedger, 0) == 0) {
      ledger_path = arg.substr(kLedger.size());
      any = true;
    } else if (arg.rfind(kRecorder, 0) == 0) {
      recorder_path = arg.substr(kRecorder.size());
      any = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  if (!any) return false;
  *argc = out;
  argv[out] = nullptr;
  if (!CompiledIn()) PrintObsDisabledHint();
  SetEnabled(true);
  if (!recorder_path.empty()) {
    FlightRecorder::Instance().Arm(recorder_path);
    FlightRecorder::Instance().InstallSignalHandlers();
  }
  if (!ledger_path.empty()) {
    RunManifest manifest;
    const std::string_view binary =
        *argc > 0 && argv[0] != nullptr ? argv[0] : "unknown";
    const std::size_t slash = binary.find_last_of('/');
    manifest.tool = std::string(
        slash == std::string_view::npos ? binary : binary.substr(slash + 1));
    manifest.run_id = ledger_path;
    manifest.num_threads = ThreadPool::Instance().num_threads();
    manifest.build_flags = BuildFlagsString();
    if (!Ledger::Instance().Open(ledger_path, manifest)) {
      std::fprintf(stderr, "obs: cannot open run ledger %s\n",
                   ledger_path.c_str());
    } else {
      g_ledger_open = true;
    }
  }
  if (g_trace_path != nullptr) StartTracing();
  std::atexit(AtExitDump);
  return true;
}

void PrintObsDisabledHint() {
  std::fprintf(stderr,
               "obs: this binary was built without instrumentation "
               "(-DTFMAE_OBS=OFF); profiles and ledgers will be empty. "
               "Rebuild with -DTFMAE_OBS=ON.\n");
}

}  // namespace tfmae::obs
