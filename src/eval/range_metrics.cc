#include "eval/range_metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace tfmae::eval {
namespace {

std::int64_t OverlapLength(const Range& a, const Range& b) {
  const std::int64_t begin = std::max(a.begin, b.begin);
  const std::int64_t end = std::min(a.end, b.end);
  return std::max<std::int64_t>(0, end - begin);
}

// Score of `range` against the set of `others`: overlap fraction damped by
// the fragmentation cardinality, plus an optional existence reward.
double RangeScore(const Range& range, const std::vector<Range>& others,
                  double alpha) {
  std::int64_t covered = 0;
  std::int64_t overlapping_ranges = 0;
  for (const Range& other : others) {
    const std::int64_t overlap = OverlapLength(range, other);
    if (overlap > 0) {
      covered += overlap;
      ++overlapping_ranges;
    }
  }
  const double existence = overlapping_ranges > 0 ? 1.0 : 0.0;
  const double overlap_fraction =
      static_cast<double>(covered) / static_cast<double>(range.length());
  const double cardinality =
      overlapping_ranges > 0 ? 1.0 / static_cast<double>(overlapping_ranges)
                             : 0.0;
  return alpha * existence + (1.0 - alpha) * cardinality * overlap_fraction;
}

}  // namespace

std::vector<Range> ExtractRanges(const std::vector<std::uint8_t>& binary) {
  std::vector<Range> ranges;
  std::size_t i = 0;
  while (i < binary.size()) {
    if (binary[i] == 0) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < binary.size() && binary[j] != 0) ++j;
    ranges.push_back({static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(j)});
    i = j;
  }
  return ranges;
}

RangeMetrics ComputeRangeMetrics(const std::vector<std::uint8_t>& predictions,
                                 const std::vector<std::uint8_t>& labels,
                                 const RangeMetricOptions& options) {
  TFMAE_CHECK(predictions.size() == labels.size());
  const std::vector<Range> predicted = ExtractRanges(predictions);
  const std::vector<Range> real = ExtractRanges(labels);

  RangeMetrics metrics;
  if (!real.empty()) {
    double recall_sum = 0.0;
    for (const Range& r : real) {
      recall_sum += RangeScore(r, predicted, options.alpha);
    }
    metrics.recall = recall_sum / static_cast<double>(real.size());
  }
  if (!predicted.empty()) {
    double precision_sum = 0.0;
    for (const Range& p : predicted) {
      // Precision uses no existence reward (alpha = 0 by definition).
      precision_sum += RangeScore(p, real, /*alpha=*/0.0);
    }
    metrics.precision = precision_sum / static_cast<double>(predicted.size());
  }
  if (metrics.precision + metrics.recall > 0.0) {
    metrics.f1 = 2.0 * metrics.precision * metrics.recall /
                 (metrics.precision + metrics.recall);
  }
  return metrics;
}

}  // namespace tfmae::eval
