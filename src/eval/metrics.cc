#include "eval/metrics.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace tfmae::eval {

Confusion CountConfusion(const std::vector<std::uint8_t>& predictions,
                         const std::vector<std::uint8_t>& labels) {
  TFMAE_CHECK_MSG(predictions.size() == labels.size(),
                  "prediction/label size mismatch: " << predictions.size()
                                                     << " vs "
                                                     << labels.size());
  Confusion c;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const bool predicted = predictions[i] != 0;
    const bool actual = labels[i] != 0;
    if (predicted && actual) ++c.true_positive;
    else if (predicted && !actual) ++c.false_positive;
    else if (!predicted && actual) ++c.false_negative;
    else ++c.true_negative;
  }
  return c;
}

PrfMetrics ComputePrf(const Confusion& confusion) {
  PrfMetrics m;
  const double tp = static_cast<double>(confusion.true_positive);
  const double fp = static_cast<double>(confusion.false_positive);
  const double fn = static_cast<double>(confusion.false_negative);
  if (tp + fp > 0) m.precision = tp / (tp + fp);
  if (tp + fn > 0) m.recall = tp / (tp + fn);
  if (m.precision + m.recall > 0) {
    m.f1 = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

PrfMetrics ComputePrf(const std::vector<std::uint8_t>& predictions,
                      const std::vector<std::uint8_t>& labels) {
  return ComputePrf(CountConfusion(predictions, labels));
}

double Auroc(const std::vector<float>& scores,
             const std::vector<std::uint8_t>& labels) {
  TFMAE_CHECK(scores.size() == labels.size());
  // Rank-sum (Mann-Whitney) formulation with midranks for ties.
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  double positive_rank_sum = 0.0;
  std::int64_t positives = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (labels[order[k]] != 0) {
        positive_rank_sum += midrank;
        ++positives;
      }
    }
    i = j + 1;
  }
  const std::int64_t negatives =
      static_cast<std::int64_t>(scores.size()) - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = positive_rank_sum -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

}  // namespace tfmae::eval
