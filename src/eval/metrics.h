// Detection metrics: precision / recall / F1 (paper Section V-A.2) plus
// AUROC as an extra threshold-free diagnostic.
#ifndef TFMAE_EVAL_METRICS_H_
#define TFMAE_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace tfmae::eval {

/// Binary confusion counts.
struct Confusion {
  std::int64_t true_positive = 0;
  std::int64_t false_positive = 0;
  std::int64_t true_negative = 0;
  std::int64_t false_negative = 0;
};

/// Point-level precision/recall/F1 (fractions in [0, 1]).
struct PrfMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Counts agreement between 0/1 predictions and ground-truth labels.
Confusion CountConfusion(const std::vector<std::uint8_t>& predictions,
                         const std::vector<std::uint8_t>& labels);

/// Precision/recall/F1 from confusion counts (0 when undefined).
PrfMetrics ComputePrf(const Confusion& confusion);

/// Convenience: CountConfusion + ComputePrf.
PrfMetrics ComputePrf(const std::vector<std::uint8_t>& predictions,
                      const std::vector<std::uint8_t>& labels);

/// Area under the ROC curve of `scores` against `labels` (probability that a
/// random anomalous point outscores a random normal one; ties count half).
double Auroc(const std::vector<float>& scores,
             const std::vector<std::uint8_t>& labels);

}  // namespace tfmae::eval

#endif  // TFMAE_EVAL_METRICS_H_
