// Range-based precision and recall (Tatbul et al., NeurIPS 2018) — a
// complement to the point-adjustment protocol that credits partial overlap
// between predicted and real anomaly ranges instead of all-or-nothing
// segment adjustment. Included because reviewers of the point-adjust
// protocol (which the paper uses) routinely ask for range-aware numbers.
//
// Model (flat positional bias):
//   Recall_T(R_i)  = alpha * Existence(R_i) +
//                    (1 - alpha) * Cardinality(R_i) * Overlap(R_i)
//   Precision_T(P_j) =            Cardinality(P_j) * Overlap(P_j)
// where Overlap is the covered fraction of the range and Cardinality
// penalizes fragmentation as 1/(number of counterpart ranges overlapped).
#ifndef TFMAE_EVAL_RANGE_METRICS_H_
#define TFMAE_EVAL_RANGE_METRICS_H_

#include <cstdint>
#include <vector>

namespace tfmae::eval {

/// A half-open index interval [begin, end).
struct Range {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  std::int64_t length() const { return end - begin; }
};

/// Extracts maximal contiguous ranges of 1s from a binary sequence.
std::vector<Range> ExtractRanges(const std::vector<std::uint8_t>& binary);

/// Tuning of the range-based metrics.
struct RangeMetricOptions {
  /// Weight of the existence reward in recall (0 = pure overlap).
  double alpha = 0.2;
};

/// Range-based precision/recall/F1.
struct RangeMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Computes range-based metrics of `predictions` against `labels`
/// (both 0/1 vectors of equal length).
RangeMetrics ComputeRangeMetrics(const std::vector<std::uint8_t>& predictions,
                                 const std::vector<std::uint8_t>& labels,
                                 const RangeMetricOptions& options = {});

}  // namespace tfmae::eval

#endif  // TFMAE_EVAL_RANGE_METRICS_H_
