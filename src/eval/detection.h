// Thresholding, the point-adjustment protocol, and score CDFs.
#ifndef TFMAE_EVAL_DETECTION_H_
#define TFMAE_EVAL_DETECTION_H_

#include <cstdint>
#include <vector>

#include "eval/metrics.h"

namespace tfmae::eval {

/// The threshold delta such that `anomaly_fraction` of `reference_scores`
/// exceed it (paper Section V-A.4: "the threshold is pre-determined by
/// detecting r% data as anomalies" on the validation set).
float QuantileThreshold(const std::vector<float>& reference_scores,
                        double anomaly_fraction);

/// Applies Eq. (17): prediction[t] = score[t] >= threshold.
std::vector<std::uint8_t> ApplyThreshold(const std::vector<float>& scores,
                                         float threshold);

/// The point-adjustment protocol used across the literature (and this
/// paper): if any point inside a contiguous ground-truth anomaly segment is
/// predicted anomalous, the entire segment counts as detected.
/// Returns the adjusted prediction vector.
std::vector<std::uint8_t> PointAdjust(const std::vector<std::uint8_t>& predictions,
                                      const std::vector<std::uint8_t>& labels);

/// Where the threshold quantile is computed.
///
/// The official implementations of this paper family (AnomalyTransformer,
/// DCdetector, TFMAE) compute the threshold percentile over the
/// concatenation of the calibration scores and the test scores; the paper
/// text describes calibrating "through the validation set". Both protocols
/// are provided; kCombined is the default used by the benches, matching the
/// official code.
enum class ThresholdProtocol {
  kValidationOnly,
  kCombined,
};

/// Full protocol: threshold quantile, point-adjust, score.
struct DetectionReport {
  float threshold = 0.0f;
  PrfMetrics raw;       ///< before point adjustment
  PrfMetrics adjusted;  ///< after point adjustment (the paper's numbers)
  double auroc = 0.5;
};

/// Runs the paper's evaluation protocol end to end.
/// `val_scores` (plus `test_scores` under kCombined) calibrate the threshold
/// at `anomaly_fraction`; `test_scores` are judged against `test_labels`.
DetectionReport EvaluateDetection(
    const std::vector<float>& val_scores,
    const std::vector<float>& test_scores,
    const std::vector<std::uint8_t>& test_labels, double anomaly_fraction,
    ThresholdProtocol protocol = ThresholdProtocol::kCombined);

/// Empirical CDF of `scores` evaluated at `grid_size` evenly spaced points
/// between lo and hi; returns (x, F(x)) pairs. Used by the Fig. 1/9 CDFs.
std::vector<std::pair<float, float>> EmpiricalCdf(
    const std::vector<float>& scores, float lo, float hi, int grid_size);

}  // namespace tfmae::eval

#endif  // TFMAE_EVAL_DETECTION_H_
