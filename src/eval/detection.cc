#include "eval/detection.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace tfmae::eval {

float QuantileThreshold(const std::vector<float>& reference_scores,
                        double anomaly_fraction) {
  TFMAE_CHECK(!reference_scores.empty());
  TFMAE_CHECK_MSG(anomaly_fraction > 0.0 && anomaly_fraction < 1.0,
                  "anomaly fraction must be in (0, 1), got "
                      << anomaly_fraction);
  std::vector<float> sorted = reference_scores;
  std::sort(sorted.begin(), sorted.end());
  const double quantile = 1.0 - anomaly_fraction;
  const std::size_t index = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(quantile *
                               static_cast<double>(sorted.size())));
  return sorted[index];
}

std::vector<std::uint8_t> ApplyThreshold(const std::vector<float>& scores,
                                         float threshold) {
  std::vector<std::uint8_t> predictions(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] >= threshold ? 1 : 0;
  }
  return predictions;
}

std::vector<std::uint8_t> PointAdjust(
    const std::vector<std::uint8_t>& predictions,
    const std::vector<std::uint8_t>& labels) {
  TFMAE_CHECK(predictions.size() == labels.size());
  std::vector<std::uint8_t> adjusted = predictions;
  const std::size_t n = labels.size();
  std::size_t i = 0;
  while (i < n) {
    if (labels[i] == 0) {
      ++i;
      continue;
    }
    // Ground-truth anomaly segment [i, j).
    std::size_t j = i;
    while (j < n && labels[j] != 0) ++j;
    bool any_hit = false;
    for (std::size_t k = i; k < j && !any_hit; ++k) {
      any_hit = predictions[k] != 0;
    }
    if (any_hit) {
      for (std::size_t k = i; k < j; ++k) adjusted[k] = 1;
    }
    i = j;
  }
  return adjusted;
}

DetectionReport EvaluateDetection(const std::vector<float>& val_scores,
                                  const std::vector<float>& test_scores,
                                  const std::vector<std::uint8_t>& test_labels,
                                  double anomaly_fraction,
                                  ThresholdProtocol protocol) {
  DetectionReport report;
  if (protocol == ThresholdProtocol::kCombined) {
    std::vector<float> combined = val_scores;
    combined.insert(combined.end(), test_scores.begin(), test_scores.end());
    report.threshold = QuantileThreshold(combined, anomaly_fraction);
  } else {
    report.threshold = QuantileThreshold(val_scores, anomaly_fraction);
  }
  const std::vector<std::uint8_t> predictions =
      ApplyThreshold(test_scores, report.threshold);
  report.raw = ComputePrf(predictions, test_labels);
  report.adjusted = ComputePrf(PointAdjust(predictions, test_labels),
                               test_labels);
  report.auroc = Auroc(test_scores, test_labels);
  return report;
}

std::vector<std::pair<float, float>> EmpiricalCdf(
    const std::vector<float>& scores, float lo, float hi, int grid_size) {
  TFMAE_CHECK(grid_size >= 2 && hi > lo && !scores.empty());
  std::vector<float> sorted = scores;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::pair<float, float>> cdf;
  cdf.reserve(static_cast<std::size_t>(grid_size));
  for (int g = 0; g < grid_size; ++g) {
    const float x = lo + (hi - lo) * static_cast<float>(g) /
                             static_cast<float>(grid_size - 1);
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    const float fraction = static_cast<float>(it - sorted.begin()) /
                           static_cast<float>(sorted.size());
    cdf.emplace_back(x, fraction);
  }
  return cdf;
}

}  // namespace tfmae::eval
