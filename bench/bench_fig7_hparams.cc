// Fig. 7 — hyper-parameter study of the architecture: F1 as a function of
// Transformer layers L in {1..5}, hidden dimension D in {32..512}, and the
// CV sliding-window length W in {1, 5, 10, 15, 20}, on the MSL and SMD
// profiles (the two datasets the paper plots).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/detector.h"
#include "obs/export.h"
#include "util/table.h"

namespace tfmae {
namespace {

int Main() {
  const double scale = bench::DatasetScale() * 0.6;
  const std::vector<data::BenchmarkDataset> datasets = {
      data::BenchmarkDataset::kMsl, data::BenchmarkDataset::kSmd};
  std::printf(
      "Fig. 7: architecture hyper-parameter study (simulated profiles, "
      "scale %.2f)\n\n",
      scale);

  Table table({"Dataset", "Knob", "Value", "F1(%)"});
  for (data::BenchmarkDataset dataset : datasets) {
    const data::LabeledDataset materialized =
        data::MakeBenchmarkDataset(dataset, scale);
    const std::string name = data::DatasetName(dataset);
    auto run = [&](const std::string& knob, const std::string& value,
                   core::TfmaeConfig config) {
      config.epochs = 20;
      core::TfmaeDetector detector(config);
      const eval::DetectionReport report = core::RunProtocol(
          &detector, materialized, bench::AnomalyFractionFor(dataset));
      table.AddRow({name, knob, value, Table::Num(report.adjusted.f1 * 100)});
      std::fprintf(stderr, "  %-4s %-7s=%-4s F1=%5.2f\n", name.c_str(),
                   knob.c_str(), value.c_str(), report.adjusted.f1 * 100);
    };

    // Layers L in {1..5} (paper sweeps the same range).
    for (std::int64_t layers = 1; layers <= 5; ++layers) {
      core::TfmaeConfig config = bench::TfmaeConfigFor(dataset);
      config.num_layers = layers;
      run("layers", std::to_string(layers), config);
    }
    // Hidden dimension D in {32, 64, 128, 256, 512}; attention heads and
    // the FFN width scale with D as in the paper's setup. The largest
    // settings dominate the sweep's runtime on one core, so D caps at 128
    // unless TFMAE_BENCH_SCALE raises the budget.
    const std::vector<std::int64_t> dims =
        bench::DatasetScale() >= 1.5
            ? std::vector<std::int64_t>{32, 64, 128, 256, 512}
            : std::vector<std::int64_t>{16, 32, 64, 128};
    for (std::int64_t dim : dims) {
      core::TfmaeConfig config = bench::TfmaeConfigFor(dataset);
      config.model_dim = dim;
      config.ff_hidden = dim * 2;
      run("dim", std::to_string(dim), config);
    }
    // CV window W in {1, 5, 10, 15, 20}.
    for (std::int64_t window : {1, 5, 10, 15, 20}) {
      core::TfmaeConfig config = bench::TfmaeConfigFor(dataset);
      config.cv_window = window;
      run("cv_win", std::to_string(window), config);
    }
  }

  std::printf("%s\n", table.ToAligned().c_str());
  table.WriteCsv(bench::ResultPath("fig7_hparams.csv"));
  std::printf("CSV written to bench_results/fig7_hparams.csv\n");
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
