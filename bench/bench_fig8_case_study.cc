// Fig. 8 — case study: anomaly-score traces of TFMAE and DCdetector on the
// NIPS-TS-Seasonal and NIPS-TS-Global datasets, with the detection
// threshold. The paper's claim: TFMAE's scores spike exactly at the
// seasonal/global anomalies while DCdetector misses them.
// Output: per-time-step CSV (value, label, tfmae score, dcdetector score,
// thresholds) plus an ASCII summary of score mass inside vs outside the
// labeled anomalies.
#include <cstdio>

#include "baselines/dcdetector.h"
#include "bench/bench_common.h"
#include "core/detector.h"
#include "eval/metrics.h"
#include "obs/export.h"
#include "util/table.h"

namespace tfmae {
namespace {

int Main() {
  const double scale = bench::DatasetScale();
  std::printf("Fig. 8: score-trace case study (scale %.2f)\n\n", scale);

  Table summary({"Dataset", "Method", "mean score (anomaly)",
                 "mean score (normal)", "ratio", "AUROC"});

  for (data::BenchmarkDataset dataset :
       {data::BenchmarkDataset::kNipsTsSeasonal,
        data::BenchmarkDataset::kNipsTsGlobal}) {
    const data::LabeledDataset materialized =
        data::MakeBenchmarkDataset(dataset, scale);
    const std::string name = data::DatasetName(dataset);

    core::TfmaeDetector tfmae(bench::TfmaeConfigFor(dataset));
    tfmae.Fit(materialized.train);
    const auto tfmae_val = tfmae.Score(materialized.val);
    const auto tfmae_test = tfmae.Score(materialized.test);
    const float tfmae_threshold = eval::QuantileThreshold(
        [&] {
          std::vector<float> combined = tfmae_val;
          combined.insert(combined.end(), tfmae_test.begin(),
                          tfmae_test.end());
          return combined;
        }(),
        bench::AnomalyFractionFor(dataset));

    baselines::DcDetectorOptions dc_options;
    baselines::DcDetector dcdetector(dc_options);
    dcdetector.Fit(materialized.train);
    const auto dc_val = dcdetector.Score(materialized.val);
    const auto dc_test = dcdetector.Score(materialized.test);
    const float dc_threshold = eval::QuantileThreshold(
        [&] {
          std::vector<float> combined = dc_val;
          combined.insert(combined.end(), dc_test.begin(), dc_test.end());
          return combined;
        }(),
        bench::AnomalyFractionFor(dataset));

    // CSV trace mirroring the figure's three rows.
    Table trace({"t", "value", "label", "tfmae_score", "tfmae_threshold",
                 "dcdetector_score", "dcdetector_threshold"});
    for (std::int64_t t = 0; t < materialized.test.length; ++t) {
      trace.AddRow({std::to_string(t),
                    Table::Num(materialized.test.at(t, 0), 4),
                    std::to_string(static_cast<int>(
                        materialized.test.labels[static_cast<std::size_t>(t)])),
                    Table::Num(tfmae_test[static_cast<std::size_t>(t)], 6),
                    Table::Num(tfmae_threshold, 6),
                    Table::Num(dc_test[static_cast<std::size_t>(t)], 6),
                    Table::Num(dc_threshold, 6)});
    }
    const std::string csv =
        bench::ResultPath("fig8_trace_" + name + ".csv");
    trace.WriteCsv(csv);
    std::printf("trace CSV written to %s\n", csv.c_str());

    auto summarize = [&](const std::string& method,
                         const std::vector<float>& scores) {
      double anomaly_sum = 0.0;
      double normal_sum = 0.0;
      std::int64_t anomaly_count = 0;
      std::int64_t normal_count = 0;
      for (std::size_t t = 0; t < scores.size(); ++t) {
        if (materialized.test.labels[t] != 0) {
          anomaly_sum += scores[t];
          ++anomaly_count;
        } else {
          normal_sum += scores[t];
          ++normal_count;
        }
      }
      const double anomaly_mean = anomaly_sum / std::max<std::int64_t>(
                                                    anomaly_count, 1);
      const double normal_mean =
          normal_sum / std::max<std::int64_t>(normal_count, 1);
      summary.AddRow({name, method, Table::Num(anomaly_mean, 5),
                      Table::Num(normal_mean, 5),
                      Table::Num(anomaly_mean / (normal_mean + 1e-12), 2),
                      Table::Num(eval::Auroc(scores,
                                             materialized.test.labels),
                                 3)});
    };
    summarize("TFMAE", tfmae_test);
    summarize("DCdetector", dc_test);
  }

  std::printf("\n%s\n", summary.ToAligned().c_str());
  summary.WriteCsv(bench::ResultPath("fig8_summary.csv"));
  std::printf(
      "Expected shape (paper): TFMAE's anomaly/normal score ratio >> 1 on "
      "both datasets;\nDCdetector's ratio near 1 (it misses the seasonal and "
      "global anomalies).\n");
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
