// Table III — main comparison: precision/recall/F1 of every implemented
// detector on the five simulated benchmark datasets (SWaT, PSM, SMD, MSL,
// SMAP), under the paper's protocol (point adjustment, combined-quantile
// threshold), plus the cross-dataset average.
#include <cstdio>
#include <memory>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "core/detector.h"
#include "obs/export.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace tfmae {
namespace {

struct Row {
  std::string method;
  // Per-dataset metrics in percent, in MainDatasets() order, then average.
  std::vector<eval::PrfMetrics> metrics;
};

int Main() {
  const double scale = bench::DatasetScale();
  const auto datasets = data::MainDatasets();

  std::printf("Table III: main results (simulated profiles, scale %.2f)\n\n",
              scale);

  // Pre-generate datasets once; every method sees identical data.
  std::vector<data::LabeledDataset> materialized;
  for (data::BenchmarkDataset dataset : datasets) {
    materialized.push_back(data::MakeBenchmarkDataset(dataset, scale));
  }

  std::vector<Row> rows;
  auto evaluate = [&](core::AnomalyDetector* detector) {
    Row row;
    row.method = detector->Name();
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      Stopwatch watch;
      const eval::DetectionReport report = core::RunProtocol(
          detector, materialized[i], bench::AnomalyFractionFor(datasets[i]));
      row.metrics.push_back(report.adjusted);
      std::fprintf(stderr, "  %-12s %-5s F1=%5.2f  (%.1fs)\n",
                   row.method.c_str(), materialized[i].name.c_str(),
                   report.adjusted.f1 * 100, watch.ElapsedSeconds());
    }
    rows.push_back(std::move(row));
  };

  for (auto& baseline : baselines::MakeAllBaselines()) {
    evaluate(baseline.get());
  }
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    // TFMAE uses its per-dataset tuned configuration (Section V-A.4).
    core::TfmaeDetector tfmae(bench::TfmaeConfigFor(datasets[i]));
    if (i == 0) rows.push_back({"TFMAE", {}});
    Stopwatch watch;
    const eval::DetectionReport report = core::RunProtocol(
        &tfmae, materialized[i], bench::AnomalyFractionFor(datasets[i]));
    rows.back().metrics.push_back(report.adjusted);
    std::fprintf(stderr, "  %-12s %-5s F1=%5.2f  (%.1fs)\n", "TFMAE",
                 materialized[i].name.c_str(), report.adjusted.f1 * 100,
                 watch.ElapsedSeconds());
  }

  // Render: one block per dataset plus the average, mirroring the paper.
  std::vector<std::string> headers = {"Model"};
  for (const auto& dataset : materialized) {
    headers.push_back(dataset.name + " P");
    headers.push_back(dataset.name + " R");
    headers.push_back(dataset.name + " F1");
  }
  headers.push_back("Avg P");
  headers.push_back("Avg R");
  headers.push_back("Avg F1");

  Table table(headers);
  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.method};
    double p_sum = 0.0;
    double r_sum = 0.0;
    double f_sum = 0.0;
    for (const auto& m : row.metrics) {
      cells.push_back(Table::Num(m.precision * 100));
      cells.push_back(Table::Num(m.recall * 100));
      cells.push_back(Table::Num(m.f1 * 100));
      p_sum += m.precision;
      r_sum += m.recall;
      f_sum += m.f1;
    }
    const double n = static_cast<double>(row.metrics.size());
    cells.push_back(Table::Num(p_sum / n * 100));
    cells.push_back(Table::Num(r_sum / n * 100));
    cells.push_back(Table::Num(f_sum / n * 100));
    table.AddRow(std::move(cells));
  }
  std::printf("%s\n", table.ToAligned().c_str());
  const std::string csv = bench::ResultPath("table3_main.csv");
  table.WriteCsv(csv);
  std::printf("CSV written to %s\n", csv.c_str());
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
