// Fig. 1 — motivation: (left) a reconstruction model (TimesNet substitute)
// trained on contaminated data reconstructs anomalies well — the
// reconstruction error at anomalous points is not much larger than at
// normal points on NIPS-TS-Global; (right) its anomaly-score CDFs on the
// SMAP validation and test splits diverge under distribution shift.
#include <cstdio>

#include "baselines/conv_ae.h"
#include "bench/bench_common.h"
#include "data/profiles.h"
#include "eval/detection.h"
#include "eval/metrics.h"
#include "obs/export.h"
#include "util/table.h"

namespace tfmae {
namespace {

int Main() {
  const double scale = bench::DatasetScale();
  std::printf("Fig. 1: motivation study (scale %.2f)\n\n", scale);

  // Left panel: reconstruction quality on contaminated NIPS-TS-Global.
  {
    data::DatasetProfile profile =
        data::GetProfile(data::BenchmarkDataset::kNipsTsGlobal, scale);
    // The motivation figure trains on contaminated data (abnormal bias).
    profile.train_contamination = 0.05;
    const data::LabeledDataset dataset = data::MakeDataset(profile);

    baselines::ConvAeDetector reconstruction({}, "TimesNet-sub");
    reconstruction.Fit(dataset.train);
    const auto scores = reconstruction.Score(dataset.test);

    double anomaly_error = 0.0;
    double normal_error = 0.0;
    std::int64_t anomaly_count = 0;
    std::int64_t normal_count = 0;
    for (std::size_t t = 0; t < scores.size(); ++t) {
      if (dataset.test.labels[t] != 0) {
        anomaly_error += scores[t];
        ++anomaly_count;
      } else {
        normal_error += scores[t];
        ++normal_count;
      }
    }
    anomaly_error /= std::max<std::int64_t>(anomaly_count, 1);
    normal_error /= std::max<std::int64_t>(normal_count, 1);
    Table left({"quantity", "value"});
    left.AddRow({"mean recon error (normal)", Table::Num(normal_error, 5)});
    left.AddRow({"mean recon error (anomaly)", Table::Num(anomaly_error, 5)});
    left.AddRow({"anomaly/normal ratio",
                 Table::Num(anomaly_error / (normal_error + 1e-12), 2)});
    left.AddRow({"AUROC", Table::Num(eval::Auroc(scores, dataset.test.labels),
                                     3)});
    std::printf("Left panel — abnormal bias on NIPS-TS-Global:\n%s\n",
                left.ToAligned().c_str());
    left.WriteCsv(bench::ResultPath("fig1_left_abnormal_bias.csv"));
  }

  // Right panel: CDF gap on SMAP for the reconstruction model.
  {
    const data::LabeledDataset dataset =
        data::MakeBenchmarkDataset(data::BenchmarkDataset::kSmap, scale);
    baselines::ConvAeDetector reconstruction({}, "TimesNet-sub");
    reconstruction.Fit(dataset.train);
    const auto val_scores = reconstruction.Score(dataset.val);
    const auto test_scores = reconstruction.Score(dataset.test);
    float max_score = 1e-12f;
    for (float s : val_scores) max_score = std::max(max_score, s);
    for (float s : test_scores) max_score = std::max(max_score, s);
    auto rescale = [max_score](std::vector<float> v) {
      for (float& s : v) s /= max_score;
      return v;
    };
    const auto val_cdf =
        eval::EmpiricalCdf(rescale(val_scores), 0.0f, 1.0f, 26);
    const auto test_cdf =
        eval::EmpiricalCdf(rescale(test_scores), 0.0f, 1.0f, 26);
    Table right({"x", "F_val(x)", "F_test(x)"});
    double ks = 0.0;
    for (std::size_t i = 0; i < val_cdf.size(); ++i) {
      right.AddRow({Table::Num(val_cdf[i].first, 3),
                    Table::Num(val_cdf[i].second, 4),
                    Table::Num(test_cdf[i].second, 4)});
      ks = std::max(ks, static_cast<double>(std::abs(
                            val_cdf[i].second - test_cdf[i].second)));
    }
    std::printf("Right panel — score CDF gap on SMAP (KS=%.4f):\n%s\n", ks,
                right.ToAligned().c_str());
    right.WriteCsv(bench::ResultPath("fig1_right_cdf_gap.csv"));
  }

  std::printf(
      "Expected shape (paper): the reconstruction model's anomaly/normal "
      "error ratio is\nmodest (abnormal bias), and its val/test CDFs show a "
      "clear gap (shift).\n");
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
