// Fig. 10 — efficiency study on the SMD profile: F1 vs training speed vs
// peak tensor memory for TFMAE, its "w/o FFT" variant (naive two-loop CV
// statistics), and the strongest deep baselines (TranAD, DCdetector,
// ConvAE≈TimesNet, USAD).
#include <cstdio>

#include "baselines/conv_ae.h"
#include "baselines/dcdetector.h"
#include "baselines/tranad.h"
#include "baselines/usad.h"
#include "bench/bench_common.h"
#include "core/detector.h"
#include "masking/coefficient_of_variation.h"
#include "obs/export.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace tfmae {
namespace {

int Main() {
  const double scale = bench::DatasetScale();
  std::printf("Fig. 10: efficiency study on SMD (scale %.2f)\n\n", scale);
  const data::LabeledDataset dataset =
      data::MakeBenchmarkDataset(data::BenchmarkDataset::kSmd, scale);
  const double fraction =
      bench::AnomalyFractionFor(data::BenchmarkDataset::kSmd);

  Table table({"Method", "F1(%)", "fit seconds", "peak tensor MiB"});

  auto run = [&](const std::string& name, core::AnomalyDetector* detector) {
    MemoryStats::ResetPeak();
    Stopwatch watch;
    detector->Fit(dataset.train);
    const double fit_seconds = watch.ElapsedSeconds();
    const double peak_mib =
        static_cast<double>(MemoryStats::PeakBytes()) / (1024.0 * 1024.0);
    const auto val_scores = detector->Score(dataset.val);
    const auto test_scores = detector->Score(dataset.test);
    const auto report = eval::EvaluateDetection(
        val_scores, test_scores, dataset.test.labels, fraction);
    table.AddRow({name, Table::Num(report.adjusted.f1 * 100),
                  Table::Num(fit_seconds, 2), Table::Num(peak_mib, 2)});
    std::fprintf(stderr, "  %-16s F1=%5.2f fit=%6.2fs peak=%6.2f MiB\n",
                 name.c_str(), report.adjusted.f1 * 100, fit_seconds,
                 peak_mib);
  };

  {
    // Same per-epoch budget as the baselines (30) for a fair speed race.
    core::TfmaeConfig config =
        bench::TfmaeConfigFor(data::BenchmarkDataset::kSmd);
    config.epochs = 30;
    core::TfmaeDetector tfmae(config);
    run("TFMAE", &tfmae);
  }
  {
    core::TfmaeConfig config =
        bench::TfmaeConfigFor(data::BenchmarkDataset::kSmd);
    config.epochs = 30;
    config.cv_method = masking::CvMethod::kNaive;
    core::TfmaeDetector no_fft(config, "TFMAE w/o FFT");
    run("TFMAE w/o FFT", &no_fft);
  }
  {
    baselines::TranAdDetector tranad;
    run("TranAD", &tranad);
  }
  {
    baselines::DcDetector dcdetector;
    run("DCdetector", &dcdetector);
  }
  {
    baselines::ConvAeDetector conv({}, "TimesNet-sub");
    run("TimesNet-sub", &conv);
  }
  {
    baselines::UsadDetector usad;
    run("USAD", &usad);
  }

  std::printf("%s\n", table.ToAligned().c_str());
  table.WriteCsv(bench::ResultPath("fig10_efficiency.csv"));

  // At |S|=50 the masking statistics are a negligible share of training, so
  // the end-to-end rows above cannot separate the FFT and two-loop paths.
  // This sub-table isolates the statistic itself (Eq. (5)'s O(N*S*W) ->
  // O(N*S*logS) claim). The asymptotic win needs W >> log S: at the paper's
  // W=10 the two-loop form is constant-factor faster, and the FFT path
  // overtakes as W grows — the sweep shows where the crossover falls.
  Table mask_table({"series length", "CV window W", "naive ms", "FFT ms",
                    "speedup"});
  Rng rng(3);
  for (const auto& [length, cv_window] :
       std::vector<std::pair<std::int64_t, std::int64_t>>{
           {8192, 10},
           {8192, 100},
           {8192, 500},
           {32768, 100},
           {32768, 1000},
           {32768, 4000}}) {
    std::vector<float> series(static_cast<std::size_t>(length * 8));
    for (float& v : series) v = static_cast<float>(rng.Normal());
    Stopwatch naive_watch;
    masking::CoefficientOfVariation(series, length, 8, cv_window,
                                    masking::CvMethod::kNaive);
    const double naive_ms = naive_watch.ElapsedMillis();
    Stopwatch fft_watch;
    masking::CoefficientOfVariation(series, length, 8, cv_window,
                                    masking::CvMethod::kFft);
    const double fft_ms = fft_watch.ElapsedMillis();
    mask_table.AddRow({std::to_string(length), std::to_string(cv_window),
                       Table::Num(naive_ms, 2), Table::Num(fft_ms, 2),
                       Table::Num(naive_ms / std::max(fft_ms, 1e-6), 1)});
  }
  std::printf("FFT acceleration of the CV statistic (Eq. (5)):\n%s\n",
              mask_table.ToAligned().c_str());
  mask_table.WriteCsv(bench::ResultPath("fig10_cv_fft_speedup.csv"));
  std::printf(
      "Expected shape (paper): TFMAE near the best F1 with a small memory "
      "footprint;\nthe w/o-FFT variant is strictly slower at identical "
      "accuracy.\nCSV written to bench_results/fig10_efficiency.csv\n");
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
