// Table IV — model ablations: TFMAE against its seven objective/architecture
// variants (w/o L_adv, w/ L_radv, w/o Fre, w/o FD, w/o Tem, w/o TE, w/o TD)
// on the five simulated datasets, plus the paper-faithful objective row
// (joint alignment off, full-weight minimax) called out in DESIGN.md §5.
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "core/detector.h"
#include "obs/export.h"
#include "util/table.h"

namespace tfmae {
namespace {

struct Variant {
  std::string name;
  std::function<void(core::TfmaeConfig*)> apply;
};

int Main() {
  const double scale = bench::DatasetScale();
  const auto datasets = data::MainDatasets();
  std::printf("Table IV: ablation results (simulated profiles, scale %.2f)\n\n",
              scale);

  const std::vector<Variant> variants = {
      {"w/o L_adv", [](core::TfmaeConfig* c) { c->use_adversarial = false; }},
      {"w/ L_radv",
       [](core::TfmaeConfig* c) { c->reverse_adversarial = true; }},
      {"w/o Fre",
       [](core::TfmaeConfig* c) { c->use_frequency_branch = false; }},
      {"w/o FD",
       [](core::TfmaeConfig* c) { c->use_frequency_decoder = false; }},
      {"w/o Tem",
       [](core::TfmaeConfig* c) { c->use_temporal_branch = false; }},
      {"w/o TE",
       [](core::TfmaeConfig* c) { c->use_temporal_encoder = false; }},
      {"w/o TD",
       [](core::TfmaeConfig* c) { c->use_temporal_decoder = false; }},
      {"paper-objective",
       [](core::TfmaeConfig* c) {
         c->joint_alignment = false;
         c->adversarial_weight = 1.0f;
       }},
      {"TFMAE", [](core::TfmaeConfig*) {}},
  };

  std::vector<std::string> headers = {"Variant"};
  for (data::BenchmarkDataset dataset : datasets) {
    const std::string name = data::DatasetName(dataset);
    headers.push_back(name + " P");
    headers.push_back(name + " R");
    headers.push_back(name + " F1");
  }
  Table table(headers);

  std::vector<data::LabeledDataset> materialized;
  for (data::BenchmarkDataset dataset : datasets) {
    materialized.push_back(data::MakeBenchmarkDataset(dataset, scale));
  }

  for (const Variant& variant : variants) {
    std::vector<std::string> cells = {variant.name};
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      core::TfmaeConfig config = bench::TfmaeConfigFor(datasets[i]);
      config.epochs = 30;  // shared reduced budget across all variants
      variant.apply(&config);
      core::TfmaeDetector detector(config, variant.name);
      const eval::DetectionReport report = core::RunProtocol(
          &detector, materialized[i], bench::AnomalyFractionFor(datasets[i]));
      cells.push_back(Table::Num(report.adjusted.precision * 100));
      cells.push_back(Table::Num(report.adjusted.recall * 100));
      cells.push_back(Table::Num(report.adjusted.f1 * 100));
      std::fprintf(stderr, "  %-16s %-5s F1=%5.2f\n", variant.name.c_str(),
                   materialized[i].name.c_str(), report.adjusted.f1 * 100);
    }
    table.AddRow(std::move(cells));
  }

  std::printf("%s\n", table.ToAligned().c_str());
  const std::string csv = bench::ResultPath("table4_ablation.csv");
  table.WriteCsv(csv);
  std::printf("CSV written to %s\n", csv.c_str());
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
