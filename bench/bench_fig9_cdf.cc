// Fig. 9 — distribution-shift case study: empirical CDFs of anomaly scores
// on the SMAP validation and test sets, for the reconstruction stand-in
// (TimesNet substitute, left panel) and TFMAE (right panel).
// The paper's claim: the reconstruction model's validation and test CDFs
// show a clear gap (shift-induced), TFMAE's coincide.
#include <cstdio>

#include "baselines/conv_ae.h"
#include "bench/bench_common.h"
#include "core/detector.h"
#include "obs/export.h"
#include "util/table.h"

namespace tfmae {
namespace {

// Normalizes scores to [0,1] by the combined max so both CDFs share an axis.
std::vector<float> Rescale(const std::vector<float>& scores, float max_score) {
  std::vector<float> out(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    out[i] = scores[i] / max_score;
  }
  return out;
}

// Kolmogorov-Smirnov distance between two empirical CDFs on a shared grid.
double KsDistance(const std::vector<std::pair<float, float>>& a,
                  const std::vector<std::pair<float, float>>& b) {
  double ks = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ks = std::max(ks, static_cast<double>(
                          std::abs(a[i].second - b[i].second)));
  }
  return ks;
}

int Main() {
  const double scale = bench::DatasetScale();
  std::printf("Fig. 9: score CDFs under distribution shift (scale %.2f)\n\n",
              scale);
  const data::LabeledDataset dataset =
      data::MakeBenchmarkDataset(data::BenchmarkDataset::kSmap, scale);

  Table cdf_table({"method", "split", "x", "F(x)"});
  Table summary({"method", "KS distance val-vs-test"});

  auto emit = [&](const std::string& method, const std::vector<float>& val,
                  const std::vector<float>& test) {
    float max_score = 1e-12f;
    for (float s : val) max_score = std::max(max_score, s);
    for (float s : test) max_score = std::max(max_score, s);
    const auto val_cdf =
        eval::EmpiricalCdf(Rescale(val, max_score), 0.0f, 1.0f, 51);
    const auto test_cdf =
        eval::EmpiricalCdf(Rescale(test, max_score), 0.0f, 1.0f, 51);
    for (const auto& [x, fx] : val_cdf) {
      cdf_table.AddRow({method, "val", Table::Num(x, 3), Table::Num(fx, 4)});
    }
    for (const auto& [x, fx] : test_cdf) {
      cdf_table.AddRow({method, "test", Table::Num(x, 3), Table::Num(fx, 4)});
    }
    const double ks = KsDistance(val_cdf, test_cdf);
    summary.AddRow({method, Table::Num(ks, 4)});
    std::printf("  %-22s KS(val, test) = %.4f\n", method.c_str(), ks);
  };

  {
    baselines::ConvAeDetector reconstruction({}, "TimesNet-sub (ConvAE)");
    reconstruction.Fit(dataset.train);
    emit(reconstruction.Name(), reconstruction.Score(dataset.val),
         reconstruction.Score(dataset.test));
  }
  {
    core::TfmaeDetector tfmae(
        bench::TfmaeConfigFor(data::BenchmarkDataset::kSmap));
    tfmae.Fit(dataset.train);
    emit("TFMAE", tfmae.Score(dataset.val), tfmae.Score(dataset.test));
  }

  cdf_table.WriteCsv(bench::ResultPath("fig9_cdf.csv"));
  summary.WriteCsv(bench::ResultPath("fig9_summary.csv"));
  std::printf(
      "\nExpected shape (paper): the reconstruction model's val/test CDFs "
      "gap\n(large KS distance); TFMAE's stay close (small KS distance).\n"
      "CSV written to bench_results/fig9_cdf.csv\n");
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
