// Shared helpers for the table/figure report generators.
//
// Each bench binary regenerates one table or figure of the paper on the
// simulated dataset profiles. Results print as an aligned console table and
// are also written as CSV into ./bench_results/ for diffing across runs.
//
// Environment knobs:
//   TFMAE_BENCH_SCALE  — multiplies every dataset split length (default 1).
//                        Use 0.5 for a quick pass, 2 for a longer one.
#ifndef TFMAE_BENCH_BENCH_COMMON_H_
#define TFMAE_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "core/config.h"
#include "data/profiles.h"

namespace tfmae::bench {

/// Value of the first `--<flag>=VALUE` argument, or nullopt when absent.
/// `flag` includes the dashes and trailing '=' (e.g. "--obs_json=").
/// Shared by every bench mode selector so the hand-rolled prefix matching
/// lives in exactly one place.
std::optional<std::string> FlagValue(int argc, char** argv,
                                     std::string_view flag);

/// Dataset scale from TFMAE_BENCH_SCALE (default 1.0).
inline double DatasetScale() {
  const char* env = std::getenv("TFMAE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double value = std::atof(env);
  return value > 0.0 ? value : 1.0;
}

/// Tuned TFMAE configuration for one benchmark dataset (the analogue of the
/// paper's per-dataset masking ratios in Section V-A.4 / Fig. 6).
inline core::TfmaeConfig TfmaeConfigFor(data::BenchmarkDataset dataset) {
  core::TfmaeConfig config;
  config.epochs = 60;
  using B = data::BenchmarkDataset;
  switch (dataset) {
    case B::kSwat:
      config.per_window_normalization = false;
      config.temporal_mask_ratio = 0.25;
      config.frequency_mask_ratio = 0.4;
      break;
    case B::kPsm:
      config.per_window_normalization = true;
      config.temporal_mask_ratio = 0.65;
      config.frequency_mask_ratio = 0.1;
      break;
    case B::kSmd:
      config.per_window_normalization = false;
      config.temporal_mask_ratio = 0.5;
      config.frequency_mask_ratio = 0.2;
      break;
    case B::kMsl:
      config.per_window_normalization = true;
      config.temporal_mask_ratio = 0.55;
      config.frequency_mask_ratio = 0.4;
      break;
    case B::kSmap:
      config.per_window_normalization = true;
      config.temporal_mask_ratio = 0.65;
      config.frequency_mask_ratio = 0.3;
      break;
    case B::kNipsTsGlobal:
      config.per_window_normalization = false;
      config.temporal_mask_ratio = 0.25;
      config.frequency_mask_ratio = 0.3;
      config.epochs = 30;
      break;
    case B::kNipsTsSeasonal:
      config.per_window_normalization = false;
      config.temporal_mask_ratio = 0.5;
      config.frequency_mask_ratio = 0.3;
      break;
  }
  return config;
}

/// Threshold fraction r per dataset (paper: 0.3%-0.9%; scaled up here in
/// proportion to the shorter simulated series).
inline double AnomalyFractionFor(data::BenchmarkDataset dataset) {
  switch (dataset) {
    case data::BenchmarkDataset::kNipsTsGlobal:
      return 0.04;
    case data::BenchmarkDataset::kNipsTsSeasonal:
      return 0.03;
    default:
      return 0.05;
  }
}

/// Creates ./bench_results (best effort) and returns "bench_results/<name>".
std::string ResultPath(const std::string& file_name);

}  // namespace tfmae::bench

#endif  // TFMAE_BENCH_BENCH_COMMON_H_
