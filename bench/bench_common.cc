#include "bench/bench_common.h"

#include <sys/stat.h>

namespace tfmae::bench {

std::optional<std::string> FlagValue(int argc, char** argv,
                                     std::string_view flag) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(flag, 0) == 0) {
      return std::string(arg.substr(flag.size()));
    }
  }
  return std::nullopt;
}

std::string ResultPath(const std::string& file_name) {
  ::mkdir("bench_results", 0755);  // best effort; ignore EEXIST
  return "bench_results/" + file_name;
}

}  // namespace tfmae::bench
