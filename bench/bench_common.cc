#include "bench/bench_common.h"

#include <sys/stat.h>

namespace tfmae::bench {

std::string ResultPath(const std::string& file_name) {
  ::mkdir("bench_results", 0755);  // best effort; ignore EEXIST
  return "bench_results/" + file_name;
}

}  // namespace tfmae::bench
