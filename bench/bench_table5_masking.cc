// Table V — masking-strategy ablations: TFMAE against the six masking
// variants (w/o MT, w/ SMT, w/ RMT, w/o MF, w/ HMF, w/ RMF) on the five
// simulated datasets.
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "core/detector.h"
#include "obs/export.h"
#include "util/table.h"

namespace tfmae {
namespace {

struct Variant {
  std::string name;
  std::function<void(core::TfmaeConfig*)> apply;
};

int Main() {
  const double scale = bench::DatasetScale();
  const auto datasets = data::MainDatasets();
  std::printf(
      "Table V: masking-strategy ablations (simulated profiles, scale "
      "%.2f)\n\n",
      scale);

  const std::vector<Variant> variants = {
      {"w/o MT",
       [](core::TfmaeConfig* c) {
         c->temporal_mask = masking::TemporalMaskVariant::kNone;
       }},
      {"w/ SMT",
       [](core::TfmaeConfig* c) {
         c->temporal_mask = masking::TemporalMaskVariant::kStdDev;
       }},
      {"w/ RMT",
       [](core::TfmaeConfig* c) {
         c->temporal_mask = masking::TemporalMaskVariant::kRandom;
       }},
      {"w/o MF",
       [](core::TfmaeConfig* c) {
         c->frequency_mask = masking::FrequencyMaskVariant::kNone;
       }},
      {"w/ HMF",
       [](core::TfmaeConfig* c) {
         c->frequency_mask = masking::FrequencyMaskVariant::kHighFrequency;
       }},
      {"w/ RMF",
       [](core::TfmaeConfig* c) {
         c->frequency_mask = masking::FrequencyMaskVariant::kRandom;
       }},
      {"TFMAE", [](core::TfmaeConfig*) {}},
  };

  std::vector<std::string> headers = {"Variant"};
  for (data::BenchmarkDataset dataset : datasets) {
    const std::string name = data::DatasetName(dataset);
    headers.push_back(name + " P");
    headers.push_back(name + " R");
    headers.push_back(name + " F1");
  }
  Table table(headers);

  std::vector<data::LabeledDataset> materialized;
  for (data::BenchmarkDataset dataset : datasets) {
    materialized.push_back(data::MakeBenchmarkDataset(dataset, scale));
  }

  for (const Variant& variant : variants) {
    std::vector<std::string> cells = {variant.name};
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      core::TfmaeConfig config = bench::TfmaeConfigFor(datasets[i]);
      config.epochs = 30;
      variant.apply(&config);
      core::TfmaeDetector detector(config, variant.name);
      const eval::DetectionReport report = core::RunProtocol(
          &detector, materialized[i], bench::AnomalyFractionFor(datasets[i]));
      cells.push_back(Table::Num(report.adjusted.precision * 100));
      cells.push_back(Table::Num(report.adjusted.recall * 100));
      cells.push_back(Table::Num(report.adjusted.f1 * 100));
      std::fprintf(stderr, "  %-8s %-5s F1=%5.2f\n", variant.name.c_str(),
                   materialized[i].name.c_str(), report.adjusted.f1 * 100);
    }
    table.AddRow(std::move(cells));
  }

  std::printf("%s\n", table.ToAligned().c_str());
  const std::string csv = bench::ResultPath("table5_masking.csv");
  table.WriteCsv(csv);
  std::printf("CSV written to %s\n", csv.c_str());
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
