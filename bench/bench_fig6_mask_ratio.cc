// Fig. 6 — hyper-parameter study of the masking strategies: F1 as a
// function of the temporal masking ratio r^(T) (5%..95%) and of the
// frequency masking ratio r^(F) (10%..90%) on each main dataset.
// To keep the sweep tractable on one core, two representative datasets are
// swept at full resolution; set TFMAE_BENCH_FIG6_ALL=1 to sweep all five.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "core/detector.h"
#include "obs/export.h"
#include "util/table.h"

namespace tfmae {
namespace {

int Main() {
  const double scale = bench::DatasetScale() * 0.6;  // sweep-sized profiles
  std::vector<data::BenchmarkDataset> datasets = {
      data::BenchmarkDataset::kSmd, data::BenchmarkDataset::kSwat};
  if (std::getenv("TFMAE_BENCH_FIG6_ALL") != nullptr) {
    datasets = data::MainDatasets();
  }
  std::printf(
      "Fig. 6: masking-ratio sensitivity (simulated profiles, scale "
      "%.2f)\n\n",
      scale);

  Table temporal_table({"Dataset", "r_T(%)", "F1(%)"});
  Table frequency_table({"Dataset", "r_F(%)", "F1(%)"});

  for (data::BenchmarkDataset dataset : datasets) {
    const data::LabeledDataset materialized =
        data::MakeBenchmarkDataset(dataset, scale);
    const std::string name = data::DatasetName(dataset);

    // Temporal ratio sweep: 5% to 95% with a 10-point interval.
    for (int ratio = 5; ratio <= 95; ratio += 10) {
      core::TfmaeConfig config = bench::TfmaeConfigFor(dataset);
      config.epochs = 20;
      config.temporal_mask_ratio = ratio / 100.0;
      core::TfmaeDetector detector(config);
      const eval::DetectionReport report =
          core::RunProtocol(&detector, materialized,
                            bench::AnomalyFractionFor(dataset));
      temporal_table.AddRow(
          {name, std::to_string(ratio), Table::Num(report.adjusted.f1 * 100)});
      std::fprintf(stderr, "  %-5s r_T=%2d%% F1=%5.2f\n", name.c_str(), ratio,
                   report.adjusted.f1 * 100);
    }

    // Frequency ratio sweep: 10% to 90% with a 10-point interval.
    for (int ratio = 10; ratio <= 90; ratio += 10) {
      core::TfmaeConfig config = bench::TfmaeConfigFor(dataset);
      config.epochs = 20;
      config.frequency_mask_ratio = ratio / 100.0;
      core::TfmaeDetector detector(config);
      const eval::DetectionReport report =
          core::RunProtocol(&detector, materialized,
                            bench::AnomalyFractionFor(dataset));
      frequency_table.AddRow(
          {name, std::to_string(ratio), Table::Num(report.adjusted.f1 * 100)});
      std::fprintf(stderr, "  %-5s r_F=%2d%% F1=%5.2f\n", name.c_str(), ratio,
                   report.adjusted.f1 * 100);
    }
  }

  std::printf("Temporal masking ratio sweep (Fig. 6 top):\n%s\n",
              temporal_table.ToAligned().c_str());
  std::printf("Frequency masking ratio sweep (Fig. 6 bottom):\n%s\n",
              frequency_table.ToAligned().c_str());
  temporal_table.WriteCsv(bench::ResultPath("fig6_temporal_ratio.csv"));
  frequency_table.WriteCsv(bench::ResultPath("fig6_frequency_ratio.csv"));
  std::printf("CSVs written to bench_results/fig6_*.csv\n");
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
