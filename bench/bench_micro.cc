// Micro-benchmarks (google-benchmark) backing the paper's complexity
// analysis (Section IV-E):
//  * FFT vs naive DFT — O(n log n) vs O(n^2).
//  * Sliding CV statistics, FFT vs two-loop — O(N·S·logS) vs O(N·S·W).
//  * Self-attention forward cost vs sequence length — the O(L·D·S^2) term.
//  * The GEMM kernel that dominates training.
//
// Run with --tensor_backend_json=PATH to skip google-benchmark and instead
// sweep the parallel tensor backend (GEMM / batched matmul / attention /
// train step at 1, 2, 4 and hardware-concurrency threads), writing a
// machine-readable JSON report with GFLOP/s and speedups over the frozen
// seed kernel and over the 1-thread run.
//
// Run with --obs_json=PATH (requires a -DTFMAE_OBS=ON build) to exercise the
// observability layer: a fixed GEMM + attention workload is run with
// instrumentation enabled, the per-op totals recorded by the obs registry are
// compared against externally measured wall time (they must agree within
// 10%), and the full metrics snapshot is written to PATH as JSON.
//
// Run with --memory_plane_json=PATH to benchmark the memory plane: a
// Transformer-layer + Adam training step is timed with the buffer pool on
// and off at 1, 2 and 4 threads, recording ns/step, physical heap
// allocations per step, pool hit rate, and logical allocation churn. The
// summary records the pooled-vs-unpooled alloc reduction and speedup, and
// verifies the final losses are bitwise identical across all configurations.
//
// Run with --resilience_json=PATH to drill the resilience plane: a small
// TFMAE fit is trained to completion, then re-run with periodic crash-safe
// checkpoints, killed mid-epoch at a step budget and resumed; the report
// records checkpoint write/load timings and whether the resumed weights are
// bitwise identical to the uninterrupted run. In a -DTFMAE_FAULTS=ON build
// the drill additionally injects NaN losses and checkpoint-write failures
// and records the numeric-guard recovery counters.
//
// Run with --inference_plan_json=PATH to benchmark pre-planned inference
// (DESIGN.md §10): eager TfmaeModel::ScoreWindow vs InferencePlan replay
// over an identical pre-prepared window batch at 1, 2 and 4 threads,
// recording ns/window, allocations/window, the bitwise eager-vs-planned
// comparison, and the 1T->4T scaling of the coarse elementwise dispatch.
//
// Run with --serving_json=PATH to load-generate the fleet-serving plane
// (docs/SERVING.md): one shared detector serves 64/256/1024 concurrent
// streams through serve::FleetServer at 1, 2 and 4 threads, recording
// rows/sec, windows/sec, per-window latency quantiles and bytes/stream per
// cell; verifying batched scores stay bitwise-identical to a sequential
// per-stream StreamingDetector at every thread count; and comparing batched
// throughput against the sequential wrapper (batch_efficiency_x).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/detector.h"
#include "core/quant.h"
#include "core/streaming.h"
#include "data/generator.h"
#include "data/profiles.h"
#include "eval/detection.h"
#include "fft/fft.h"
#include "masking/coefficient_of_variation.h"
#include "masking/frequency_mask.h"
#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/serialize.h"
#include "nn/transformer.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/fleet_server.h"
#include "serve/fleet_snapshot.h"
#include "tensor/gemm_kernels.h"
#include "tensor/op_kernels.h"
#include "tensor/quant_kernels.h"
#include "tensor/ops.h"
#include "tensor/pool.h"
#include "util/fault.h"
#include "util/memory.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tfmae {
namespace {

std::vector<fft::Complex> RandomComplex(std::int64_t n) {
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<fft::Complex> signal(static_cast<std::size_t>(n));
  for (auto& v : signal) v = fft::Complex(rng.Normal(), rng.Normal());
  return signal;
}

void BM_FftForward(benchmark::State& state) {
  const auto signal = RandomComplex(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::Fft(signal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftForward)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_NaiveDft(benchmark::State& state) {
  const auto signal = RandomComplex(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::NaiveDft(signal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveDft)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

std::vector<float> RandomSeries(std::int64_t length, std::int64_t features) {
  Rng rng(static_cast<std::uint64_t>(length * 31 + features));
  std::vector<float> series(static_cast<std::size_t>(length * features));
  for (float& v : series) v = static_cast<float>(rng.Normal());
  return series;
}

// Args: {series length, CV window W}. Feature count fixed at 8.
void BM_CvStatisticFft(benchmark::State& state) {
  const std::int64_t length = state.range(0);
  const std::int64_t window = state.range(1);
  const auto series = RandomSeries(length, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(masking::CoefficientOfVariation(
        series, length, 8, window, masking::CvMethod::kFft));
  }
}
BENCHMARK(BM_CvStatisticFft)
    ->Args({512, 10})
    ->Args({2048, 10})
    ->Args({2048, 50})
    ->Args({8192, 50});

void BM_CvStatisticNaive(benchmark::State& state) {
  const std::int64_t length = state.range(0);
  const std::int64_t window = state.range(1);
  const auto series = RandomSeries(length, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(masking::CoefficientOfVariation(
        series, length, 8, window, masking::CvMethod::kNaive));
  }
}
BENCHMARK(BM_CvStatisticNaive)
    ->Args({512, 10})
    ->Args({2048, 10})
    ->Args({2048, 50})
    ->Args({8192, 50});

void BM_AttentionForward(benchmark::State& state) {
  const std::int64_t t_len = state.range(0);
  Rng rng(3);
  nn::MultiHeadSelfAttention attention(32, 4, &rng);
  Tensor x = Tensor::Randn({t_len, 32}, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention.Forward(x));
  }
  state.SetComplexityN(t_len);
}
BENCHMARK(BM_AttentionForward)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity();

void BM_MatMul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(4);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_FrequencyMasking(benchmark::State& state) {
  const std::int64_t length = state.range(0);
  Rng rng(5);
  std::vector<float> column(static_cast<std::size_t>(length));
  for (float& v : column) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(masking::MaskFrequencyColumn(
        column, 0.3, masking::FrequencyMaskVariant::kAmplitude, nullptr));
  }
}
BENCHMARK(BM_FrequencyMasking)->Arg(50)->Arg(100)->Arg(512);

// ---- tensor backend sweep (--tensor_backend_json=PATH) ---------------------

/// Median-of-reps seconds per call. Calibrates the iteration count so each
/// rep runs for roughly `target_sec`.
template <typename Fn>
double TimePerCall(const Fn& fn, double target_sec = 0.15) {
  using clock = std::chrono::steady_clock;
  fn();  // warm caches and the thread pool
  auto t0 = clock::now();
  fn();
  double once = std::chrono::duration<double>(clock::now() - t0).count();
  const int iters = std::max(1, static_cast<int>(target_sec / std::max(once, 1e-7)));
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    t0 = clock::now();
    for (int it = 0; it < iters; ++it) fn();
    double sec =
        std::chrono::duration<double>(clock::now() - t0).count() / iters;
    best = std::min(best, sec);
  }
  return best;
}

struct SweepRow {
  std::string op;
  std::string shape;
  int threads;
  double seconds;
  double gflops;            // <= 0 when flop count is not meaningful
  double speedup_vs_seed;   // <= 0 when no seed baseline applies
  double speedup_vs_1t;
};

std::vector<float> RandomBuffer(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return v;
}

int RunTensorBackendSweep(const std::string& path) {
  std::vector<int> threads = {1, 2, 4};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 4) threads.push_back(hw);

  std::vector<SweepRow> rows;
  char shape_buf[64];

  // GEMM shapes: the acceptance shape, a square, and a tall-skinny reduce.
  const std::int64_t gemm_shapes[][3] = {
      {256, 512, 512}, {512, 512, 512}, {64, 2048, 64}};
  for (const auto& s : gemm_shapes) {
    const std::int64_t m = s[0], k = s[1], n = s[2];
    std::snprintf(shape_buf, sizeof(shape_buf), "%ldx%ldx%ld",
                  static_cast<long>(m), static_cast<long>(k),
                  static_cast<long>(n));
    const auto a = RandomBuffer(m * k, 1);
    const auto b = RandomBuffer(k * n, 2);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    const double flops = 2.0 * static_cast<double>(m) * k * n;

    const double seed_sec = TimePerCall([&] {
      std::fill(c.begin(), c.end(), 0.0f);
      gemm::GemmNaiveSeed(a.data(), b.data(), c.data(), m, k, n);
    });
    rows.push_back({"gemm_seed", shape_buf, 1, seed_sec, flops / seed_sec / 1e9,
                    1.0, 1.0});

    double one_sec = 0.0;
    for (int t : threads) {
      ThreadPool::Instance().SetNumThreads(t);
      const double sec = TimePerCall([&] {
        std::fill(c.begin(), c.end(), 0.0f);
        gemm::Gemm(a.data(), b.data(), c.data(), m, k, n);
      });
      if (t == 1) one_sec = sec;
      rows.push_back({"gemm", shape_buf, t, sec, flops / sec / 1e9,
                      seed_sec / sec, one_sec / sec});
    }
  }

  // Batched matmul at the attention shape: H heads of [T, Dh] x [Dh, T].
  {
    const std::int64_t h = 8, t_len = 256, dh = 64;
    std::snprintf(shape_buf, sizeof(shape_buf), "%ldx%ldx%ldx%ld",
                  static_cast<long>(h), static_cast<long>(t_len),
                  static_cast<long>(dh), static_cast<long>(t_len));
    const auto a = RandomBuffer(h * t_len * dh, 3);
    const auto b = RandomBuffer(h * dh * t_len, 4);
    std::vector<float> c(static_cast<std::size_t>(h * t_len * t_len));
    const double flops = 2.0 * h * t_len * dh * t_len;
    double one_sec = 0.0;
    for (int t : threads) {
      ThreadPool::Instance().SetNumThreads(t);
      const double sec = TimePerCall([&] {
        std::fill(c.begin(), c.end(), 0.0f);
        gemm::BatchedGemm(a.data(), b.data(), c.data(), h, t_len, dh, t_len);
      });
      if (t == 1) one_sec = sec;
      rows.push_back({"batched_matmul", shape_buf, t, sec, flops / sec / 1e9,
                      -1.0, one_sec / sec});
    }
  }

  // Attention forward and a full Transformer-layer train step: end-to-end
  // time (GEMM + softmax + layernorm + elementwise), no flop count.
  {
    const std::int64_t t_len = 256, dim = 64, heads = 8, ff = 256;
    Rng rng(5);
    nn::MultiHeadSelfAttention attention(dim, heads, &rng);
    nn::TransformerLayer layer(dim, heads, ff, &rng);
    Tensor x = Tensor::Randn({t_len, dim}, &rng);
    std::snprintf(shape_buf, sizeof(shape_buf), "T%ld_D%ld_H%ld",
                  static_cast<long>(t_len), static_cast<long>(dim),
                  static_cast<long>(heads));
    double one_attn = 0.0, one_step = 0.0;
    for (int t : threads) {
      ThreadPool::Instance().SetNumThreads(t);
      const double attn_sec = TimePerCall([&] {
        NoGradGuard no_grad;
        benchmark::DoNotOptimize(attention.Forward(x));
      });
      if (t == 1) one_attn = attn_sec;
      rows.push_back({"attention_forward", shape_buf, t, attn_sec, -1.0, -1.0,
                      one_attn / attn_sec});
      const double step_sec = TimePerCall([&] {
        Tensor input = x.Clone().set_requires_grad(true);
        ops::SumAll(layer.Forward(input)).Backward();
      });
      if (t == 1) one_step = step_sec;
      rows.push_back({"train_step", shape_buf, t, step_sec, -1.0, -1.0,
                      one_step / step_sec});
    }
  }
  ThreadPool::Instance().SetNumThreads(0);  // back to 1 worker thread

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"shape\": \"%s\", \"threads\": %d, "
                 "\"seconds\": %.6e",
                 r.op.c_str(), r.shape.c_str(), r.threads, r.seconds);
    if (r.gflops > 0) std::fprintf(f, ", \"gflops\": %.2f", r.gflops);
    if (r.speedup_vs_seed > 0) {
      std::fprintf(f, ", \"speedup_vs_seed\": %.2f", r.speedup_vs_seed);
    }
    std::fprintf(f, ", \"speedup_vs_1thread\": %.2f, \"hw_cores\": %d}%s\n",
                 r.speedup_vs_1t,
                 static_cast<int>(std::thread::hardware_concurrency()),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("wrote %zu rows to %s\n", rows.size(), path.c_str());
  return 0;
}

// ---- memory plane sweep (--memory_plane_json=PATH) -------------------------

struct MemPlaneRow {
  bool pooled;
  int threads;
  double ns_per_step;
  double heap_allocs_per_step;     // physical: pool misses + unpooled news
  double logical_allocs_per_step;  // MemoryStats buffer creations
  double hit_rate;                 // pooled acquisitions served from cache
  std::int64_t peak_logical_bytes;
  std::int64_t peak_pool_bytes;
  float final_loss;
};

/// Times a TransformerLayer + Adam training step with the buffer pool on and
/// off across thread counts. Steady-state pooled steps must be (nearly)
/// malloc-free for tensor buffers, at least 10x fewer physical allocations
/// and 1.2x faster than unpooled, and bitwise loss-identical to unpooled at
/// every thread count — the determinism contract of the memory plane.
int RunMemoryPlaneSweep(const std::string& path) {
  // Window lengths cycle per step, mirroring TFMAE training where temporal
  // masking leaves a different number of visible tokens each batch. The
  // pool's power-of-two size classes absorb the variation (all three
  // lengths share classes, so steady-state hit rate stays 1.0); the
  // unpooled path faces the realistic malloc churn of varying sizes.
  //
  // Long windows are the regime the pool targets: each attention score
  // matrix is heads * len^2 floats (32-42 MiB here), above glibc's mmap
  // threshold ceiling, so with TFMAE_POOL=0 every such buffer is a fresh
  // mmap/munmap pair whose pages are faulted in and kernel-zeroed on every
  // single step. The pool hands back the same warm pages instead.
  const std::int64_t kLens[3] = {1024, 1088, 1152};
  const std::int64_t dim = 64, heads = 8, ff = 256;
  const int kWarmSteps = 3;
  const int kSteps = 10;
  const int kReps = 3;
  const std::vector<int> threads = {1, 2, 4};

  std::vector<MemPlaneRow> rows;
  for (int pass = 0; pass < 2; ++pass) {
    const bool pooled = pass == 0;
    for (int t : threads) {
      pool::SetEnabled(pooled);
      pool::Trim();
      ThreadPool::Instance().SetNumThreads(t);
      // Identical seeds in every configuration: the loss sequences must
      // match bitwise regardless of pooling or thread count.
      Rng rng(5);
      nn::TransformerLayer layer(dim, heads, ff, &rng);
      Rng data_rng(11);
      Tensor xs[3];
      Tensor targets[3];
      for (int li = 0; li < 3; ++li) {
        xs[li] = Tensor::Randn({kLens[li], dim}, &data_rng);
        targets[li] = Tensor::Randn({kLens[li], dim}, &data_rng);
      }
      nn::AdamOptions opts;
      opts.learning_rate = 1e-3f;
      nn::Adam adam(layer.Parameters(), opts);
      float loss_val = 0.0f;
      std::int64_t step_index = 0;
      auto step = [&] {
        const int li = static_cast<int>(step_index++ % 3);
        Tensor out = layer.Forward(xs[li]);
        Tensor loss = ops::MseLoss(out, targets[li]);
        adam.ZeroGrad();
        loss.Backward();
        adam.Step();
        loss_val = loss.item();
      };
      for (int i = 0; i < kWarmSteps; ++i) step();
      MemoryStats::ResetPeak();
      // Full counter reset (not just the peak): rows earlier in the sweep —
      // and their warm-up steps — must not bleed into this row's
      // peak_pool_bytes or hit-rate deltas.
      pool::ResetCounters();
      const pool::PoolStats s0 = pool::Stats();
      const std::int64_t logical0 = MemoryStats::AllocCalls();
      // Min-of-reps: each rep times kSteps further training steps; the
      // minimum is robust to scheduler and frequency noise. Every
      // configuration executes the same total step count, so the final
      // losses stay comparable bitwise.
      double best_sec = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < kSteps; ++i) step();
        best_sec = std::min(
            best_sec,
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count());
      }
      const double sec = best_sec;
      const pool::PoolStats s1 = pool::Stats();
      const std::int64_t acquisitions =
          (s1.hits - s0.hits) + (s1.misses - s0.misses);
      MemPlaneRow row;
      row.pooled = pooled;
      row.threads = t;
      row.ns_per_step = sec * 1e9 / kSteps;
      const int measured_steps = kReps * kSteps;
      row.heap_allocs_per_step =
          static_cast<double>(s1.HeapAllocs() - s0.HeapAllocs()) /
          measured_steps;
      row.logical_allocs_per_step =
          static_cast<double>(MemoryStats::AllocCalls() - logical0) /
          measured_steps;
      row.hit_rate = acquisitions > 0 ? static_cast<double>(s1.hits - s0.hits) /
                                            static_cast<double>(acquisitions)
                                      : 0.0;
      row.peak_logical_bytes = MemoryStats::PeakBytes();
      row.peak_pool_bytes = s1.peak_outstanding_bytes;
      row.final_loss = loss_val;
      rows.push_back(row);
      std::printf(
          "%-8s threads=%d  %10.0f ns/step  %7.2f heap allocs/step  "
          "hit_rate=%.4f  loss=%.9g\n",
          pooled ? "pooled" : "unpooled", t, row.ns_per_step,
          row.heap_allocs_per_step, row.hit_rate,
          static_cast<double>(row.final_loss));
    }
  }
  pool::SetEnabled(true);

  // Summary: per-thread pooled vs unpooled ratios, plus the bitwise loss
  // check across all six configurations.
  bool losses_match = true;
  std::uint32_t loss0_bits = 0;
  std::memcpy(&loss0_bits, &rows[0].final_loss, sizeof(loss0_bits));
  for (const MemPlaneRow& r : rows) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &r.final_loss, sizeof(bits));
    if (bits != loss0_bits) losses_match = false;
  }
  double worst_speedup = 1e30;
  double worst_alloc_reduction = 1e30;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const MemPlaneRow& pr = rows[i];
    const MemPlaneRow& ur = rows[i + threads.size()];
    worst_speedup = std::min(worst_speedup, ur.ns_per_step / pr.ns_per_step);
    // A pooled steady state can be exactly 0 allocs/step; floor at one
    // allocation over the whole measured run so the ratio stays finite.
    const double floor_allocs = 1.0 / (kReps * kSteps);
    worst_alloc_reduction =
        std::min(worst_alloc_reduction,
                 ur.heap_allocs_per_step /
                     std::max(pr.heap_allocs_per_step, floor_allocs));
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"transformer_layer_adam_step\",\n");
  std::fprintf(f,
               "  \"shape\": \"T%ld-%ld_D%ld_H%ld_FF%ld\",\n"
               "  \"steps_per_rep\": %d,\n  \"reps\": %d,\n",
               static_cast<long>(kLens[0]), static_cast<long>(kLens[2]),
               static_cast<long>(dim), static_cast<long>(heads),
               static_cast<long>(ff), kSteps, kReps);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MemPlaneRow& r = rows[i];
    std::uint32_t bits = 0;
    std::memcpy(&bits, &r.final_loss, sizeof(bits));
    std::fprintf(f,
                 "    {\"pool\": %s, \"threads\": %d, \"ns_per_step\": %.0f, "
                 "\"heap_allocs_per_step\": %.3f, "
                 "\"logical_allocs_per_step\": %.3f, \"hit_rate\": %.4f, "
                 "\"peak_logical_bytes\": %lld, \"peak_pool_bytes\": %lld, "
                 "\"final_loss\": %.9g, \"final_loss_bits\": \"0x%08x\", "
                 "\"hw_cores\": %d}%s\n",
                 r.pooled ? "true" : "false", r.threads, r.ns_per_step,
                 r.heap_allocs_per_step, r.logical_allocs_per_step, r.hit_rate,
                 static_cast<long long>(r.peak_logical_bytes),
                 static_cast<long long>(r.peak_pool_bytes),
                 static_cast<double>(r.final_loss), bits,
                 static_cast<int>(std::thread::hardware_concurrency()),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"alloc_reduction_x\": %.1f,\n", worst_alloc_reduction);
  std::fprintf(f, "    \"speedup_x\": %.2f,\n", worst_speedup);
  std::fprintf(f, "    \"losses_bitwise_identical\": %s,\n",
               losses_match ? "true" : "false");
  std::fprintf(f, "    \"hw_cores\": %d\n",
               static_cast<int>(std::thread::hardware_concurrency()));
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("summary: alloc_reduction_x=%.1f speedup_x=%.2f "
              "losses_bitwise_identical=%s\n",
              worst_alloc_reduction, worst_speedup,
              losses_match ? "true" : "false");
  std::printf("wrote %s\n", path.c_str());
  return losses_match ? 0 : 1;
}

// ---- observability self-check (--obs_json=PATH) ----------------------------

/// Runs a fixed GEMM + attention workload with instrumentation enabled and
/// checks that the per-op totals the obs registry recorded agree with wall
/// time measured outside the instrumented code. Writes the full metrics
/// snapshot to `path`. Returns non-zero if instrumentation is compiled out
/// or the recorded totals drift more than 10% from wall time.
int RunObsProfile(const std::string& path) {
  if (!obs::CompiledIn()) {
    std::fprintf(stderr,
                 "--obs_json requires instrumentation compiled in; rebuild "
                 "with -DTFMAE_OBS=ON (see docs/OBSERVABILITY.md)\n");
    return 1;
  }
  obs::SetEnabled(true);
  obs::Registry::Instance().Reset();
  using clock = std::chrono::steady_clock;

  // GEMM workload: time the instrumented call and nothing else, so the
  // external wall measurement is directly comparable to tensor.gemm.total_ns.
  const std::int64_t m = 256, k = 512, n = 512;
  const auto a = RandomBuffer(m * k, 1);
  const auto b = RandomBuffer(k * n, 2);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  const int gemm_iters = 40;
  gemm::Gemm(a.data(), b.data(), c.data(), m, k, n);  // warm up, recorded
  const std::uint64_t gemm_ns_before =
      obs::Registry::Instance().CounterValue("tensor.gemm.total_ns");
  auto t0 = clock::now();
  for (int it = 0; it < gemm_iters; ++it) {
    gemm::Gemm(a.data(), b.data(), c.data(), m, k, n);
  }
  const double gemm_wall =
      std::chrono::duration<double>(clock::now() - t0).count();
  const double gemm_obs =
      static_cast<double>(
          obs::Registry::Instance().CounterValue("tensor.gemm.total_ns") -
          gemm_ns_before) /
      1e9;

  // Attention forward workload against nn.attention.fwd.total_ns.
  Rng rng(7);
  nn::MultiHeadSelfAttention attention(64, 8, &rng);
  Tensor x = Tensor::Randn({256, 64}, &rng);
  const int attn_iters = 40;
  {
    NoGradGuard no_grad;
    benchmark::DoNotOptimize(attention.Forward(x));  // warm up, recorded
  }
  const std::uint64_t attn_ns_before =
      obs::Registry::Instance().CounterValue("nn.attention.fwd.total_ns");
  t0 = clock::now();
  {
    NoGradGuard no_grad;
    for (int it = 0; it < attn_iters; ++it) {
      benchmark::DoNotOptimize(attention.Forward(x));
    }
  }
  const double attn_wall =
      std::chrono::duration<double>(clock::now() - t0).count();
  const double attn_obs =
      static_cast<double>(
          obs::Registry::Instance().CounterValue("nn.attention.fwd.total_ns") -
          attn_ns_before) /
      1e9;

  const double gemm_ratio = gemm_obs / gemm_wall;
  const double attn_ratio = attn_obs / attn_wall;
  std::printf("obs coverage: gemm %.4fs obs / %.4fs wall = %.3f\n", gemm_obs,
              gemm_wall, gemm_ratio);
  std::printf("obs coverage: attention %.4fs obs / %.4fs wall = %.3f\n",
              attn_obs, attn_wall, attn_ratio);
  obs::DumpJson(path);
  std::printf("wrote metrics snapshot to %s\n", path.c_str());
  const bool ok = std::abs(gemm_ratio - 1.0) <= 0.10 &&
                  std::abs(attn_ratio - 1.0) <= 0.10;
  if (!ok) {
    std::fprintf(stderr,
                 "obs totals drifted more than 10%% from wall time\n");
  }
  return ok ? 0 : 1;
}

// ---- inference plan sweep (--inference_plan_json=PATH) ---------------------

struct PlanSweepRow {
  bool planned;
  int threads;
  double ns_per_window;
  double logical_allocs_per_window;  // MemoryStats buffer creations
  double heap_allocs_per_window;     // pool misses + unpooled news
  std::int64_t peak_pool_bytes;
};

/// Benchmarks pre-planned inference (DESIGN.md §10) against the eager
/// scoring path: a small detector is fitted once, a fixed batch of windows
/// is prepared once, and both TfmaeModel::ScoreWindow and
/// InferencePlan::Score are timed over the identical windows at 1, 2 and 4
/// threads. The summary records the worst planned-vs-eager speedup, whether
/// steady-state replay is allocation-free, whether every planned score is
/// bitwise-identical to eager, and the 1T->4T scaling of the coarse
/// elementwise dispatch the replay executor uses (hardware-qualified:
/// hw_cores lets the gate skip the absolute scaling floor on small hosts).
int RunInferencePlanSweep(const std::string& path) {
  using clock = std::chrono::steady_clock;

  // The fast-config geometry the repo's tests and the resilience drill
  // score with (window 32, D=32): small windows are exactly the regime the
  // plan targets — streaming detectors replaying millions of them.
  core::TfmaeConfig config;
  config.window = 32;
  config.model_dim = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ff_hidden = 64;
  config.epochs = 1;
  config.stride = 64;
  config.seed = 17;
  config.per_window_normalization = false;

  data::BaseSignalConfig signal;
  signal.length = 1024;
  signal.num_features = 4;
  signal.seed = 20240605;
  const data::TimeSeries series = data::GenerateBaseSignal(signal);

  std::printf("fitting detector (W=%lld D=%lld L=%lld)...\n",
              static_cast<long long>(config.window),
              static_cast<long long>(config.model_dim),
              static_cast<long long>(config.num_layers));
  core::TfmaeDetector detector(config);
  detector.Fit(series);
  core::TfmaeModel* model = detector.model();

  // A fixed window batch, prepared ONCE with a fixed rng: eager and planned
  // timing loops score byte-identical inputs, so their outputs must match
  // bitwise and neither pays preparation cost inside the timed region.
  const int kNumWindows = 24;
  std::vector<core::MaskedWindow> windows;
  Rng mask_rng(123);
  for (int w = 0; w < kNumWindows; ++w) {
    const std::int64_t start =
        (static_cast<std::int64_t>(w) * 37) %
        (series.length - config.window + 1);
    std::vector<float> values(
        static_cast<std::size_t>(config.window * series.num_features));
    std::memcpy(values.data(),
                series.values.data() +
                    static_cast<std::size_t>(start * series.num_features),
                values.size() * sizeof(float));
    windows.push_back(model->PrepareWindow(values, &mask_rng));
  }

  std::string capture_error;
  std::vector<float> capture_scores;
  std::unique_ptr<core::InferencePlan> plan = core::InferencePlan::Capture(
      *model, windows[0], &capture_scores, &capture_error);
  if (plan == nullptr) {
    std::fprintf(stderr, "plan capture failed: %s\n", capture_error.c_str());
    return 1;
  }
  const core::InferencePlanStats& ps = plan->stats();
  std::printf(
      "plan: %lld ops (%lld captured, %lld fused away, %lld reshapes "
      "elided), %lld slots, %lld arena bytes\n",
      static_cast<long long>(ps.ops), static_cast<long long>(ps.captured_ops),
      static_cast<long long>(ps.fused_ops),
      static_cast<long long>(ps.elided_reshapes),
      static_cast<long long>(ps.slots), static_cast<long long>(ps.arena_bytes));

  const int kReps = 5;
  const std::vector<int> threads = {1, 2, 4};
  std::vector<PlanSweepRow> rows;
  bool bitwise_identical = true;
  bool planned_zero_alloc = true;
  double worst_speedup = 1e30;

  std::vector<std::vector<float>> eager_scores(windows.size());
  std::vector<float> planned_out;
  for (int t : threads) {
    ThreadPool::Instance().SetNumThreads(t);
    double row_ns[2] = {0.0, 0.0};  // [eager, planned]
    for (int pass = 0; pass < 2; ++pass) {
      const bool planned = pass == 1;
      // Per-row stats reset (the bench-sweep discipline): earlier rows'
      // churn must not inflate this row's peaks or alloc deltas.
      pool::ResetCounters();
      // Warm-up pass, also the correctness pass: collect this thread
      // count's eager scores, then check every planned replay against them.
      for (std::size_t w = 0; w < windows.size(); ++w) {
        if (!planned) {
          eager_scores[w] = model->ScoreWindow(windows[w]);
        } else {
          plan->Score(windows[w], &planned_out);
          const std::vector<float>& ref = eager_scores[w];
          if (planned_out.size() != ref.size() ||
              std::memcmp(planned_out.data(), ref.data(),
                          ref.size() * sizeof(float)) != 0) {
            bitwise_identical = false;
          }
        }
      }
      const std::int64_t logical0 = MemoryStats::AllocCalls();
      const std::int64_t heap0 = pool::Stats().HeapAllocs();
      double best_sec = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        const auto t0 = clock::now();
        for (const core::MaskedWindow& w : windows) {
          if (!planned) {
            std::vector<float> s = model->ScoreWindow(w);
            (void)s;
          } else {
            plan->Score(w, &planned_out);
          }
        }
        best_sec = std::min(
            best_sec,
            std::chrono::duration<double>(clock::now() - t0).count());
      }
      const double measured_windows =
          static_cast<double>(kReps) * static_cast<double>(windows.size());
      PlanSweepRow row;
      row.planned = planned;
      row.threads = t;
      row.ns_per_window = best_sec * 1e9 / static_cast<double>(windows.size());
      row.logical_allocs_per_window =
          static_cast<double>(MemoryStats::AllocCalls() - logical0) /
          measured_windows;
      row.heap_allocs_per_window =
          static_cast<double>(pool::Stats().HeapAllocs() - heap0) /
          measured_windows;
      row.peak_pool_bytes = pool::Stats().peak_outstanding_bytes;
      if (planned && (row.logical_allocs_per_window != 0.0 ||
                      row.heap_allocs_per_window != 0.0)) {
        planned_zero_alloc = false;
      }
      row_ns[pass] = row.ns_per_window;
      rows.push_back(row);
      std::printf("%-8s threads=%d  %9.0f ns/window  %6.2f allocs/window\n",
                  planned ? "planned" : "eager", t, row.ns_per_window,
                  row.logical_allocs_per_window);
    }
    worst_speedup = std::min(worst_speedup, row_ns[0] / row_ns[1]);
  }

  // Thread scaling of the coarse elementwise dispatch itself — the replay
  // executor's fused elementwise regions in isolation, where scaling is
  // memory-bound rather than GEMM-bound. 1T vs 4T over a fixed FMA chain.
  const std::int64_t kElems = std::int64_t{1} << 22;
  std::vector<float> ea(static_cast<std::size_t>(kElems), 1.25f);
  std::vector<float> eb(static_cast<std::size_t>(kElems), 0.75f);
  std::vector<float> ec(static_cast<std::size_t>(kElems), 0.0f);
  double elem_sec[2] = {0.0, 0.0};
  const int kElemReps = 7;
  for (int pass = 0; pass < 2; ++pass) {
    const int t = pass == 0 ? 1 : 4;
    ThreadPool::Instance().SetNumThreads(t);
    const float* pa = ea.data();
    const float* pb = eb.data();
    float* pc = ec.data();
    auto body = [&](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        pc[i] = pa[i] * pb[i] + pc[i] * 0.5f;
      }
    };
    ops::kernels::ForEachElemChunkCoarse(kElems, body);  // warm-up
    double best = 1e30;
    for (int rep = 0; rep < kElemReps; ++rep) {
      const auto t0 = clock::now();
      ops::kernels::ForEachElemChunkCoarse(kElems, body);
      best = std::min(
          best, std::chrono::duration<double>(clock::now() - t0).count());
    }
    elem_sec[pass] = best;
  }
  const double elementwise_4t_speedup = elem_sec[0] / elem_sec[1];
  const int hw_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  ThreadPool::Instance().SetNumThreads(1);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"tfmae_score_window\",\n");
  std::fprintf(f,
               "  \"shape\": \"W%lld_D%lld_L%lld_F%lld\",\n"
               "  \"windows\": %d,\n  \"reps\": %d,\n",
               static_cast<long long>(config.window),
               static_cast<long long>(config.model_dim),
               static_cast<long long>(config.num_layers),
               static_cast<long long>(series.num_features), kNumWindows,
               kReps);
  std::fprintf(f,
               "  \"plan\": {\"ops\": %lld, \"captured_ops\": %lld, "
               "\"fused_ops\": %lld, \"elided_reshapes\": %lld, "
               "\"slots\": %lld, \"arena_bytes\": %lld},\n",
               static_cast<long long>(ps.ops),
               static_cast<long long>(ps.captured_ops),
               static_cast<long long>(ps.fused_ops),
               static_cast<long long>(ps.elided_reshapes),
               static_cast<long long>(ps.slots),
               static_cast<long long>(ps.arena_bytes));
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PlanSweepRow& r = rows[i];
    std::fprintf(f,
                 "    {\"planned\": %s, \"threads\": %d, "
                 "\"ns_per_window\": %.0f, "
                 "\"logical_allocs_per_window\": %.3f, "
                 "\"heap_allocs_per_window\": %.3f, "
                 "\"peak_pool_bytes\": %lld, \"hw_cores\": %d}%s\n",
                 r.planned ? "true" : "false", r.threads, r.ns_per_window,
                 r.logical_allocs_per_window, r.heap_allocs_per_window,
                 static_cast<long long>(r.peak_pool_bytes), hw_cores,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"speedup_x\": %.2f,\n", worst_speedup);
  std::fprintf(f, "    \"planned_zero_alloc\": %s,\n",
               planned_zero_alloc ? "true" : "false");
  std::fprintf(f, "    \"scores_bitwise_identical\": %s,\n",
               bitwise_identical ? "true" : "false");
  std::fprintf(f, "    \"elementwise_4t_speedup\": %.2f,\n",
               elementwise_4t_speedup);
  std::fprintf(f, "    \"hw_cores\": %d\n", hw_cores);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf(
      "summary: speedup_x=%.2f planned_zero_alloc=%s "
      "scores_bitwise_identical=%s elementwise_4t_speedup=%.2f hw_cores=%d\n",
      worst_speedup, planned_zero_alloc ? "true" : "false",
      bitwise_identical ? "true" : "false", elementwise_4t_speedup, hw_cores);
  std::printf("wrote %s\n", path.c_str());
  return (bitwise_identical && planned_zero_alloc) ? 0 : 1;
}

// ---- int8 quant sweep (--quant_json=PATH) ----------------------------------

struct QuantLatencyRow {
  const char* precision;  // "fp32" | "int8"
  int threads;
  double ns_per_window;
};

struct QuantParityRow {
  std::string dataset;
  double f1_fp32;
  double f1_int8;
  double delta;
  bool fell_back;
};

/// Epochs used for the parity fits. Quantization parity measures score
/// AGREEMENT between two precisions of the same weights, not absolute
/// detection quality, so a short fit with the per-dataset masking recipe is
/// representative and keeps the sweep minutes, not hours. Eight epochs is
/// the shortest fit at which every profile's fp32 F1 has stabilized;
/// under-trained fits leave borderline segments whose point-adjust F1
/// flips on sub-percent score perturbations, which measures threshold
/// luck, not quantization quality.
constexpr std::int64_t kQuantParityEpochs = 8;

/// |F1_int8 - F1_fp32| tolerance per dataset profile (the gate's hard
/// f1_parity condition).
constexpr double kQuantF1Tolerance = 0.005;

/// Benchmarks the int8 scoring path (DESIGN.md §12) against the fp32
/// inference plan, and verifies detection parity. Three parts:
///  1. Latency: fp32 plan vs int8 plan over one fixed window batch at 1, 2
///     and 4 threads (best-of-reps). The gate's floor is the 1-thread
///     speedup — it must not depend on core count.
///  2. Determinism: int8 scores must be bitwise-identical across thread
///     counts (the same contract the fp32 plan has vs eager).
///  3. F1 parity: on each dataset profile, fit once, evaluate the paper's
///     protocol with fp32 scoring and with int8 scoring (identical weights,
///     aligned mask rng streams), and require |dF1| <= 0.005 with zero
///     quant fallbacks. `max_profiles` > 0 limits the profile list (the
///     check.sh smoke runs 3).
int RunQuantSweep(const std::string& path, int max_profiles) {
  using clock = std::chrono::steady_clock;

  core::TfmaeConfig config;
  config.window = 32;
  config.model_dim = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ff_hidden = 64;
  config.epochs = 1;
  config.stride = 64;
  config.seed = 17;
  config.per_window_normalization = false;

  data::BaseSignalConfig signal;
  signal.length = 1024;
  signal.num_features = 4;
  signal.seed = 20240605;
  const data::TimeSeries series = data::GenerateBaseSignal(signal);

  std::printf("fitting + calibrating detector (W=%lld D=%lld L=%lld)...\n",
              static_cast<long long>(config.window),
              static_cast<long long>(config.model_dim),
              static_cast<long long>(config.num_layers));
  core::TfmaeDetector detector(config);
  detector.SetQuantMode(core::TfmaeDetector::QuantMode::kOff);
  detector.Fit(series);
  std::string error;
  if (!detector.Calibrate(series, &error)) {
    std::fprintf(stderr, "calibration failed: %s\n", error.c_str());
    return 1;
  }
  core::TfmaeModel* model = detector.model();
  const core::QuantSpec& spec = detector.quant_spec();

  const int kNumWindows = 24;
  std::vector<core::MaskedWindow> windows;
  Rng mask_rng(123);
  for (int w = 0; w < kNumWindows; ++w) {
    const std::int64_t start =
        (static_cast<std::int64_t>(w) * 37) %
        (series.length - config.window + 1);
    std::vector<float> values(
        static_cast<std::size_t>(config.window * series.num_features));
    std::memcpy(values.data(),
                series.values.data() +
                    static_cast<std::size_t>(start * series.num_features),
                values.size() * sizeof(float));
    windows.push_back(model->PrepareWindow(values, &mask_rng));
  }

  std::vector<float> capture_scores;
  std::unique_ptr<core::InferencePlan> fp32_plan = core::InferencePlan::Capture(
      *model, windows[0], &capture_scores, &error);
  if (fp32_plan == nullptr) {
    std::fprintf(stderr, "fp32 plan capture failed: %s\n", error.c_str());
    return 1;
  }
  std::unique_ptr<core::InferencePlan> int8_plan = core::InferencePlan::Capture(
      *model, windows[0], &capture_scores, &error, &spec);
  if (int8_plan == nullptr) {
    std::fprintf(stderr, "int8 plan capture failed: %s\n", error.c_str());
    return 1;
  }
  const core::InferencePlanStats& qs = int8_plan->stats();
  std::printf(
      "int8 plan: %lld ops, %lld quant linears, %lld elided quant pairs, "
      "%lld B quant arena (fp32 arena %lld B), isa=%s\n",
      static_cast<long long>(qs.ops),
      static_cast<long long>(qs.quant_linear_ops),
      static_cast<long long>(qs.elided_quant_pairs),
      static_cast<long long>(qs.quant_arena_bytes),
      static_cast<long long>(qs.arena_bytes), quant::QuantGemmIsa());

  // 1+2. Latency and cross-thread determinism.
  const int kReps = 5;
  std::vector<QuantLatencyRow> rows;
  bool bitwise_identical = true;
  double speedup_1t = 0.0;
  std::vector<std::vector<float>> int8_ref(windows.size());
  std::vector<float> out;
  for (const int t : {1, 2, 4}) {
    ThreadPool::Instance().SetNumThreads(t);
    double row_ns[2] = {0.0, 0.0};  // [fp32, int8]
    for (int pass = 0; pass < 2; ++pass) {
      core::InferencePlan* plan = pass == 0 ? fp32_plan.get()
                                            : int8_plan.get();
      // Warm-up + determinism check: int8 scores at every thread count
      // must equal the 1-thread reference bitwise.
      for (std::size_t w = 0; w < windows.size(); ++w) {
        plan->Score(windows[w], &out);
        if (pass == 1) {
          if (int8_ref[w].empty()) {
            int8_ref[w] = out;
          } else if (out.size() != int8_ref[w].size() ||
                     std::memcmp(out.data(), int8_ref[w].data(),
                                 out.size() * sizeof(float)) != 0) {
            bitwise_identical = false;
          }
        }
      }
      double best_sec = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        const auto t0 = clock::now();
        for (const core::MaskedWindow& w : windows) plan->Score(w, &out);
        best_sec = std::min(
            best_sec,
            std::chrono::duration<double>(clock::now() - t0).count());
      }
      row_ns[pass] = best_sec * 1e9 / static_cast<double>(windows.size());
      rows.push_back({pass == 0 ? "fp32" : "int8", t, row_ns[pass]});
      std::printf("%-5s threads=%d  %9.0f ns/window\n",
                  pass == 0 ? "fp32" : "int8", t, row_ns[pass]);
    }
    if (t == 1) speedup_1t = row_ns[0] / row_ns[1];
  }
  ThreadPool::Instance().SetNumThreads(1);

  // 3. Detection parity across the dataset profiles. Two identically
  // fitted detectors per profile keep the scoring mask-rng streams aligned
  // (Calibrate uses a private rng), so the only difference between the two
  // evaluations is the kernel precision. Parity always runs at dataset
  // scale 1.0 regardless of TFMAE_BENCH_SCALE: point-adjust F1 on a
  // fractional split is chunky enough that a single borderline point
  // crossing the threshold flips whole anomaly segments, which measures
  // sample-size brittleness rather than kernel fidelity.
  const double scale = 1.0;
  std::vector<data::BenchmarkDataset> datasets = data::MainDatasets();
  if (max_profiles > 0 &&
      static_cast<std::size_t>(max_profiles) < datasets.size()) {
    datasets.resize(static_cast<std::size_t>(max_profiles));
  }
  std::vector<QuantParityRow> parity;
  bool f1_parity = true;
  double max_f1_delta = 0.0;
  for (const data::BenchmarkDataset dataset : datasets) {
    const data::LabeledDataset ds = data::MakeBenchmarkDataset(dataset, scale);
    core::TfmaeConfig pc = bench::TfmaeConfigFor(dataset);
    pc.epochs = std::min<std::int64_t>(pc.epochs, kQuantParityEpochs);
    const double fraction = bench::AnomalyFractionFor(dataset);

    core::TfmaeDetector fp32_det(pc);
    fp32_det.SetQuantMode(core::TfmaeDetector::QuantMode::kOff);
    fp32_det.Fit(ds.train);
    const std::vector<float> val_fp = fp32_det.Score(ds.val);
    const std::vector<float> test_fp = fp32_det.Score(ds.test);
    const eval::DetectionReport rep_fp = eval::EvaluateDetection(
        val_fp, test_fp, ds.test.labels, fraction);

    core::TfmaeDetector int8_det(pc);
    int8_det.SetQuantMode(core::TfmaeDetector::QuantMode::kOff);
    int8_det.Fit(ds.train);
    if (!int8_det.Calibrate(ds.val, &error)) {
      std::fprintf(stderr, "%s: calibration failed: %s\n",
                   data::DatasetName(dataset).c_str(), error.c_str());
      return 1;
    }
    int8_det.SetQuantMode(core::TfmaeDetector::QuantMode::kInt8);
    const std::vector<float> val_q = int8_det.Score(ds.val);
    const std::vector<float> test_q = int8_det.Score(ds.test);
    const eval::DetectionReport rep_q = eval::EvaluateDetection(
        val_q, test_q, ds.test.labels, fraction);

    QuantParityRow row;
    row.dataset = data::DatasetName(dataset);
    row.f1_fp32 = rep_fp.adjusted.f1;
    row.f1_int8 = rep_q.adjusted.f1;
    row.delta = std::fabs(row.f1_int8 - row.f1_fp32);
    row.fell_back = int8_det.quant_fallbacks() > 0;
    max_f1_delta = std::max(max_f1_delta, row.delta);
    if (row.delta > kQuantF1Tolerance || row.fell_back) f1_parity = false;
    std::printf("%-16s f1_fp32=%.4f f1_int8=%.4f delta=%.4f%s\n",
                row.dataset.c_str(), row.f1_fp32, row.f1_int8, row.delta,
                row.fell_back ? "  (FELL BACK TO FP32)" : "");
    parity.push_back(std::move(row));
  }

  const int hw_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"tfmae_score_window_int8\",\n");
  std::fprintf(f,
               "  \"shape\": \"W%lld_D%lld_L%lld_F%lld\",\n"
               "  \"windows\": %d,\n  \"reps\": %d,\n  \"isa\": \"%s\",\n"
               "  \"parity_epochs\": %lld,\n  \"parity_dataset_scale\": %.3f,\n",
               static_cast<long long>(config.window),
               static_cast<long long>(config.model_dim),
               static_cast<long long>(config.num_layers),
               static_cast<long long>(series.num_features), kNumWindows,
               kReps, quant::QuantGemmIsa(),
               static_cast<long long>(kQuantParityEpochs), scale);
  std::fprintf(f,
               "  \"plan\": {\"ops\": %lld, \"quant_linear_ops\": %lld, "
               "\"elided_quant_pairs\": %lld, \"quant_arena_bytes\": %lld, "
               "\"fp32_arena_bytes\": %lld},\n",
               static_cast<long long>(qs.ops),
               static_cast<long long>(qs.quant_linear_ops),
               static_cast<long long>(qs.elided_quant_pairs),
               static_cast<long long>(qs.quant_arena_bytes),
               static_cast<long long>(qs.arena_bytes));
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "    {\"precision\": \"%s\", \"threads\": %d, "
                 "\"ns_per_window\": %.0f, \"hw_cores\": %d}%s\n",
                 rows[i].precision, rows[i].threads, rows[i].ns_per_window,
                 hw_cores, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"profiles\": [\n");
  for (std::size_t i = 0; i < parity.size(); ++i) {
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"f1_fp32\": %.4f, "
                 "\"f1_int8\": %.4f, \"delta\": %.4f, \"fell_back\": %s}%s\n",
                 parity[i].dataset.c_str(), parity[i].f1_fp32,
                 parity[i].f1_int8, parity[i].delta,
                 parity[i].fell_back ? "true" : "false",
                 i + 1 < parity.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"speedup_1t_x\": %.2f,\n", speedup_1t);
  std::fprintf(f, "    \"scores_bitwise_identical\": %s,\n",
               bitwise_identical ? "true" : "false");
  std::fprintf(f, "    \"f1_parity\": %s,\n", f1_parity ? "true" : "false");
  std::fprintf(f, "    \"max_f1_delta\": %.4f,\n", max_f1_delta);
  std::fprintf(f, "    \"profiles_evaluated\": %zu,\n", parity.size());
  std::fprintf(f, "    \"hw_cores\": %d\n", hw_cores);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf(
      "summary: speedup_1t_x=%.2f scores_bitwise_identical=%s f1_parity=%s "
      "max_f1_delta=%.4f hw_cores=%d\n",
      speedup_1t, bitwise_identical ? "true" : "false",
      f1_parity ? "true" : "false", max_f1_delta, hw_cores);
  std::printf("wrote %s\n", path.c_str());
  return (bitwise_identical && f1_parity) ? 0 : 1;
}

// ---- resilience drill (--resilience_json=PATH) -----------------------------

/// Exercises the crash-safe training path end to end: an uninterrupted
/// reference fit, then a checkpointed fit killed at a step budget and
/// resumed from disk. Verifies the resumed weights match the reference
/// bitwise (the DESIGN.md §9 contract) and, when fault points are compiled
/// in, that a fit under injected NaN losses and checkpoint-write failures
/// still converges. Writes a JSON report to `path`.
int RunResilienceSweep(const std::string& path) {
  using clock = std::chrono::steady_clock;

  core::TfmaeConfig config;
  config.window = 32;
  config.model_dim = 16;
  config.num_layers = 1;
  config.num_heads = 2;
  config.ff_hidden = 32;
  config.epochs = 2;
  config.stride = 8;
  config.per_window_normalization = false;

  data::BaseSignalConfig signal;
  signal.length = 512;
  signal.num_features = 3;
  signal.seed = 20240311;
  const data::TimeSeries series = data::GenerateBaseSignal(signal);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "tfmae_resilience_drill")
          .string();
  std::filesystem::remove_all(dir);

  // Reference: one uninterrupted fit, no checkpointing overhead.
  core::TfmaeDetector reference(config);
  auto t0 = clock::now();
  reference.Fit(series);
  const double ref_sec = std::chrono::duration<double>(clock::now() - t0).count();
  const std::vector<char> ref_weights =
      nn::EncodeParameters(*reference.model());
  const std::int64_t total_steps = reference.train_stats().num_steps;

  // Kill-and-resume: checkpoint every few steps, stop mid-run, resume.
  core::FitOptions options;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 5;
  options.keep_last = 3;
  options.max_steps = total_steps / 2;
  core::TfmaeDetector killed(config);
  t0 = clock::now();
  killed.Fit(series, options);
  const double killed_sec =
      std::chrono::duration<double>(clock::now() - t0).count();
  const std::int64_t checkpoints_written =
      killed.train_stats().checkpoints_written;
  const bool interrupted = killed.train_stats().interrupted;

  core::FitOptions resume_options = options;
  resume_options.max_steps = 0;
  t0 = clock::now();
  const bool resumed = killed.Resume(series, resume_options);
  const double resume_sec =
      std::chrono::duration<double>(clock::now() - t0).count();
  const std::int64_t resumed_at_step = killed.train_stats().resumed_at_step;

  bool bitwise_identical = false;
  if (resumed) {
    const std::vector<char> resumed_weights =
        nn::EncodeParameters(*killed.model());
    bitwise_identical =
        resumed_weights.size() == ref_weights.size() &&
        std::memcmp(resumed_weights.data(), ref_weights.data(),
                    ref_weights.size()) == 0;
  }
  std::printf(
      "resilience: %lld steps, %lld checkpoints, resumed at step %lld, "
      "bitwise_identical=%s\n",
      static_cast<long long>(total_steps),
      static_cast<long long>(checkpoints_written),
      static_cast<long long>(resumed_at_step),
      bitwise_identical ? "true" : "false");

  // Fault drill (fault builds only): NaN losses and checkpoint-write
  // failures injected at fixed probabilities must leave training finished,
  // finite, and accounted for in the numeric-guard counters.
  bool fault_drill_ran = false;
  bool fault_drill_ok = true;
  core::TrainStats drill_stats;
  std::int64_t drill_injected = 0;
  if (fault::CompiledIn()) {
    fault_drill_ran = true;
    fault::Configure("train.nan_loss:0.05,io.checkpoint_write:0.25", 42);
    const std::string drill_dir = dir + "_faulty";
    std::filesystem::remove_all(drill_dir);
    core::FitOptions drill_options;
    drill_options.checkpoint_dir = drill_dir;
    drill_options.checkpoint_every = 4;
    core::TfmaeDetector drilled(config);
    drilled.Fit(series, drill_options);
    drill_stats = drilled.train_stats();
    drill_injected =
        static_cast<std::int64_t>(fault::InjectedCount("train.nan_loss")) +
        static_cast<std::int64_t>(fault::InjectedCount("io.checkpoint_write"));
    fault::Clear();
    fault_drill_ok = !drill_stats.interrupted &&
                     std::isfinite(drill_stats.mean_loss_last_epoch) &&
                     drill_stats.numeric.skipped_steps ==
                         drill_stats.numeric.nonfinite_loss +
                             drill_stats.numeric.nonfinite_grad;
    std::filesystem::remove_all(drill_dir);
    std::printf(
        "fault drill: %lld injected, %lld steps skipped, %lld checkpoint "
        "failures, final loss %.6g\n",
        static_cast<long long>(drill_injected),
        static_cast<long long>(drill_stats.numeric.skipped_steps),
        static_cast<long long>(drill_stats.checkpoint_failures),
        drill_stats.mean_loss_last_epoch);
  }
  std::filesystem::remove_all(dir);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": \"tfmae_fit_kill_resume\",\n"
               "  \"series\": \"L%lld_F%lld\",\n"
               "  \"config\": \"W%lld_D%lld_E%lld\",\n",
               static_cast<long long>(signal.length),
               static_cast<long long>(signal.num_features),
               static_cast<long long>(config.window),
               static_cast<long long>(config.model_dim),
               static_cast<long long>(config.epochs));
  std::fprintf(f,
               "  \"reference\": {\"num_steps\": %lld, \"fit_seconds\": %.4f, "
               "\"mean_loss_last_epoch\": %.9g},\n",
               static_cast<long long>(total_steps), ref_sec,
               reference.train_stats().mean_loss_last_epoch);
  std::fprintf(
      f,
      "  \"kill_and_resume\": {\"max_steps\": %lld, \"interrupted\": %s, "
      "\"checkpoints_written\": %lld, \"checkpoint_every\": %lld, "
      "\"killed_seconds\": %.4f, \"resumed\": %s, \"resumed_at_step\": %lld, "
      "\"resume_seconds\": %.4f, \"weights_bitwise_identical\": %s},\n",
      static_cast<long long>(options.max_steps), interrupted ? "true" : "false",
      static_cast<long long>(checkpoints_written),
      static_cast<long long>(options.checkpoint_every), killed_sec,
      resumed ? "true" : "false", static_cast<long long>(resumed_at_step),
      resume_sec, bitwise_identical ? "true" : "false");
  std::fprintf(f, "  \"fault_drill\": ");
  if (fault_drill_ran) {
    std::fprintf(
        f,
        "{\"spec\": \"train.nan_loss:0.05,io.checkpoint_write:0.25\", "
        "\"seed\": 42, \"injected\": %lld, \"skipped_steps\": %lld, "
        "\"restores\": %lld, \"lr_backoffs\": %lld, "
        "\"checkpoint_failures\": %lld, \"final_loss\": %.9g, "
        "\"recovered\": %s},\n",
        static_cast<long long>(drill_injected),
        static_cast<long long>(drill_stats.numeric.skipped_steps),
        static_cast<long long>(drill_stats.numeric.restores),
        static_cast<long long>(drill_stats.numeric.lr_backoffs),
        static_cast<long long>(drill_stats.checkpoint_failures),
        drill_stats.mean_loss_last_epoch, fault_drill_ok ? "true" : "false");
  } else {
    std::fprintf(f, "null,\n");
  }
  std::fprintf(f,
               "  \"summary\": {\"weights_bitwise_identical\": %s, "
               "\"fault_drill_recovered\": %s}\n}\n",
               bitwise_identical ? "true" : "false",
               fault_drill_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return (bitwise_identical && fault_drill_ok) ? 0 : 1;
}

// ---- fleet serving sweep (--serving_json=PATH) -----------------------------

struct ServingSweepRow {
  std::int64_t streams;
  int threads;
  double rows_per_sec;
  double windows_per_sec;
  double p50_window_us;
  double p95_window_us;
  double p99_window_us;
  std::int64_t bytes_per_stream;
  std::int64_t batches;
  std::int64_t max_batch;
};

/// Load-generates the fleet-serving plane (docs/SERVING.md): one shared
/// fitted detector serves `streams` concurrent StreamState fleets, replayed
/// tick-major for a fixed row budget through serve::FleetServer at 1, 2 and
/// 4 threads. Per cell: rows/sec, windows/sec, per-window score latency
/// quantiles and bytes/stream. The summary verifies the serving contract —
/// batched scores bitwise-identical to a sequential per-stream
/// StreamingDetector at every thread count — and measures
/// batch_efficiency_x, the batched-vs-sequential windows/sec ratio at one
/// thread (two timings from the same process, so it is host-independent and
/// gateable; absolute rows/sec are recorded but not gated).
int RunServingSweep(const std::string& path) {
  using clock = std::chrono::steady_clock;

  // The serving geometry: same fast config as the inference-plan sweep (the
  // planner's target regime), hop 8 so one window amortizes over 8 rows.
  core::TfmaeConfig config;
  config.window = 32;
  config.model_dim = 32;
  config.num_layers = 2;
  config.num_heads = 4;
  config.ff_hidden = 64;
  config.epochs = 1;
  config.stride = 64;
  config.seed = 17;
  config.per_window_normalization = false;

  data::BaseSignalConfig signal;
  signal.length = 2048;
  signal.num_features = 4;
  signal.seed = 20240605;
  const data::TimeSeries series = data::GenerateBaseSignal(signal);

  std::printf("fitting shared detector (W=%lld D=%lld L=%lld)...\n",
              static_cast<long long>(config.window),
              static_cast<long long>(config.model_dim),
              static_cast<long long>(config.num_layers));
  core::TfmaeDetector detector(config);
  detector.Fit(series);
  const std::vector<float> calibration = detector.Score(series);

  core::StreamingOptions streaming;
  streaming.window = 32;
  streaming.hop = 8;

  // 96 ticks/stream -> rescores at pushes 32, 40, ..., 96 = 9 windows per
  // stream (clean synthetic data: no quarantine, cadence is exact).
  const std::int64_t kRows = 96;
  const std::int64_t kWindowsPerStream =
      (kRows - streaming.window) / streaming.hop + 1;

  // Deterministic fleet replay: every stream walks the same base signal at a
  // stream-specific phase offset, so any two runs see byte-identical rows.
  auto row_for = [&](std::int64_t stream, std::int64_t t) {
    std::vector<float> row(static_cast<std::size_t>(series.num_features));
    const std::int64_t idx = (t + 17 * stream) % series.length;
    for (std::int64_t f = 0; f < series.num_features; ++f) {
      row[static_cast<std::size_t>(f)] =
          series.values[static_cast<std::size_t>(idx * series.num_features + f)];
    }
    return row;
  };
  auto bitwise_eq = [](const std::vector<float>& a,
                       const std::vector<float>& b) {
    return a.size() == b.size() &&
           (a.empty() || std::memcmp(a.data(), b.data(),
                                     a.size() * sizeof(float)) == 0);
  };

  // Sequential reference: the per-stream synchronous wrapper, one thread.
  // Records the fresh tail score at each rescore push — exactly the scores
  // FleetServer delivers via TakeResults for the same rows.
  const std::int64_t kVerifyStreams = 8;
  ThreadPool::Instance().SetNumThreads(1);
  std::vector<std::vector<float>> reference(
      static_cast<std::size_t>(kVerifyStreams));
  for (std::int64_t s = 0; s < kVerifyStreams; ++s) {
    core::StreamingDetector sd(&detector, streaming);
    sd.CalibrateThreshold(calibration, 0.05);
    for (std::int64_t t = 0; t < kRows; ++t) {
      const auto r = sd.Push(row_for(s, t));
      const std::int64_t push = t + 1;  // 1-based push index
      const bool rescore = push >= streaming.window &&
                           (push - streaming.window) % streaming.hop == 0;
      if (r.has_value() && rescore) {
        reference[static_cast<std::size_t>(s)].push_back(r->score);
      }
    }
  }

  const std::vector<int> thread_counts = {1, 2, 4};
  bool batched_bitwise_identical = true;
  for (int t : thread_counts) {
    ThreadPool::Instance().SetNumThreads(t);
    serve::FleetOptions fopts;
    fopts.streaming = streaming;
    fopts.max_streams = kVerifyStreams;
    fopts.queue_capacity = 4096;
    fopts.batch_max = 5;  // non-divisor of the fleet: batches straddle ticks
    serve::FleetServer server(&detector, fopts);
    server.CalibrateThreshold(calibration, 0.05);
    for (std::int64_t s = 0; s < kVerifyStreams; ++s) server.OpenStream();
    for (std::int64_t tick = 0; tick < kRows; ++tick) {
      for (std::int64_t s = 0; s < kVerifyStreams; ++s) {
        const std::vector<float> row = row_for(s, tick);
        while (server.Push(s, row) == serve::AdmitStatus::kOverloaded) {
          server.Flush();
        }
      }
    }
    server.Drain();
    std::vector<std::vector<float>> got(
        static_cast<std::size_t>(kVerifyStreams));
    for (const serve::ScoredWindow& w : server.TakeResults()) {
      got[static_cast<std::size_t>(w.stream)].push_back(w.score);
    }
    for (std::int64_t s = 0; s < kVerifyStreams; ++s) {
      if (!bitwise_eq(got[static_cast<std::size_t>(s)],
                      reference[static_cast<std::size_t>(s)])) {
        batched_bitwise_identical = false;
      }
    }
    std::printf("verify threads=%d  batched==sequential: %s\n", t,
                batched_bitwise_identical ? "ok" : "MISMATCH");
  }

  // Crash-safety contract (docs/RESILIENCE.md, "Serving resilience"): a run
  // snapshotted mid-stream, "killed", restored into a fresh server, and
  // re-fed from total_pushed() on must produce — as the union of the two
  // runs' results — exactly the uninterrupted reference, bit for bit, at
  // every thread count. Keyed by (stream, seq) so coverage gaps and
  // disagreeing duplicates both fail.
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint32_t> ref_map;
  for (std::int64_t s = 0; s < kVerifyStreams; ++s) {
    const auto& scores = reference[static_cast<std::size_t>(s)];
    for (std::size_t k = 0; k < scores.size(); ++k) {
      const std::int64_t seq = streaming.window - 1 +
                               static_cast<std::int64_t>(k) * streaming.hop;
      std::uint32_t bits = 0;
      std::memcpy(&bits, &scores[k], sizeof(bits));
      ref_map[{s, seq}] = bits;
    }
  }
  bool snapshot_restore_bitwise = true;
  for (int t : thread_counts) {
    ThreadPool::Instance().SetNumThreads(t);
    const std::string snap_dir =
        (std::filesystem::temp_directory_path() /
         ("tfmae_bench_serving_snap_t" + std::to_string(t)))
            .string();
    std::filesystem::remove_all(snap_dir);
    serve::FleetOptions fopts;
    fopts.streaming = streaming;
    fopts.max_streams = kVerifyStreams;
    fopts.queue_capacity = 4096;
    fopts.batch_max = 5;
    fopts.snapshot_dir = snap_dir;
    const std::int64_t kCut = 50;  // mid-hop: queued windows are in flight
    std::map<std::pair<std::int64_t, std::int64_t>, std::uint32_t> got;
    auto take_into = [&](serve::FleetServer* server) {
      for (const serve::ScoredWindow& w : server->TakeResults()) {
        if (w.shed) continue;
        std::uint32_t bits = 0;
        std::memcpy(&bits, &w.score, sizeof(bits));
        const auto [it, inserted] = got.insert({{w.stream, w.seq}, bits});
        if (!inserted && it->second != bits) snapshot_restore_bitwise = false;
      }
    };
    {
      serve::FleetServer server(&detector, fopts);
      server.CalibrateThreshold(calibration, 0.05);
      for (std::int64_t s = 0; s < kVerifyStreams; ++s) server.OpenStream();
      for (std::int64_t tick = 0; tick < kCut; ++tick) {
        for (std::int64_t s = 0; s < kVerifyStreams; ++s) {
          const std::vector<float> row = row_for(s, tick);
          while (server.Push(s, row) == serve::AdmitStatus::kOverloaded) {
            server.Flush();
          }
        }
        take_into(&server);
      }
      std::string error;
      if (!server.SnapshotNow(&error)) {
        std::fprintf(stderr, "serving snapshot failed: %s\n", error.c_str());
        snapshot_restore_bitwise = false;
      }
      // Post-snapshot work whose results are never observed — the "crash":
      // the resumed run must regenerate all of it.
      for (std::int64_t tick = kCut; tick < kCut + 7; ++tick) {
        for (std::int64_t s = 0; s < kVerifyStreams; ++s) {
          const std::vector<float> row = row_for(s, tick);
          while (server.Push(s, row) == serve::AdmitStatus::kOverloaded) {
            server.Flush();
          }
        }
      }
    }
    std::string error;
    auto found = serve::FindLatestValidFleetSnapshot(snap_dir, &error);
    if (!found.has_value()) {
      std::fprintf(stderr, "no valid serving snapshot: %s\n", error.c_str());
      snapshot_restore_bitwise = false;
    } else {
      serve::FleetServer resumed(&detector, fopts);
      if (!resumed.Restore(found->second, &error)) {
        std::fprintf(stderr, "serving restore failed: %s\n", error.c_str());
        snapshot_restore_bitwise = false;
      } else {
        for (std::int64_t tick = resumed.total_pushed(0); tick < kRows;
             ++tick) {
          for (std::int64_t s = 0; s < kVerifyStreams; ++s) {
            const std::vector<float> row = row_for(s, tick);
            while (resumed.Push(s, row) == serve::AdmitStatus::kOverloaded) {
              resumed.Flush();
            }
          }
          take_into(&resumed);
        }
        resumed.Drain();
        take_into(&resumed);
      }
    }
    if (got != ref_map) snapshot_restore_bitwise = false;
    std::filesystem::remove_all(snap_dir);
    std::printf("verify threads=%d  restore==uninterrupted: %s\n", t,
                snapshot_restore_bitwise ? "ok" : "MISMATCH");
  }

  // Sequential windows/sec at one thread (the batch-efficiency denominator):
  // the same fleet replay, but each stream owns a synchronous wrapper.
  const std::int64_t kEffStreams = 256;
  ThreadPool::Instance().SetNumThreads(1);
  double sequential_windows_per_sec = 0.0;
  {
    pool::ResetCounters();
    std::vector<std::unique_ptr<core::StreamingDetector>> fleet;
    for (std::int64_t s = 0; s < kEffStreams; ++s) {
      fleet.push_back(
          std::make_unique<core::StreamingDetector>(&detector, streaming));
      fleet.back()->CalibrateThreshold(calibration, 0.05);
    }
    const auto t0 = clock::now();
    for (std::int64_t tick = 0; tick < kRows; ++tick) {
      for (std::int64_t s = 0; s < kEffStreams; ++s) {
        (void)fleet[static_cast<std::size_t>(s)]->Push(row_for(s, tick));
      }
    }
    const double sec =
        std::chrono::duration<double>(clock::now() - t0).count();
    sequential_windows_per_sec =
        static_cast<double>(kEffStreams * kWindowsPerStream) / sec;
    std::printf("sequential threads=1 streams=%lld  %9.0f windows/sec\n",
                static_cast<long long>(kEffStreams),
                sequential_windows_per_sec);
  }

  // The load matrix: streams x threads.
  const std::vector<std::int64_t> stream_counts = {64, 256, 1024};
  std::vector<ServingSweepRow> rows;
  double serve_windows_per_sec_256_1t = 0.0;
  double windows_per_sec_1t = 0.0;
  std::int64_t bytes_per_stream = 0;
  for (std::int64_t n : stream_counts) {
    for (int t : thread_counts) {
      ThreadPool::Instance().SetNumThreads(t);
      // Per-cell stats reset (the bench-sweep discipline): earlier cells'
      // churn must not inflate this cell's pool peaks.
      pool::ResetCounters();
      serve::FleetOptions fopts;
      fopts.streaming = streaming;
      fopts.max_streams = n;
      fopts.queue_capacity = 4096;
      fopts.batch_max = 64;
      serve::FleetServer server(&detector, fopts);
      server.CalibrateThreshold(calibration, 0.05);
      for (std::int64_t s = 0; s < n; ++s) server.OpenStream();
      const auto t0 = clock::now();
      for (std::int64_t tick = 0; tick < kRows; ++tick) {
        for (std::int64_t s = 0; s < n; ++s) {
          const std::vector<float> row = row_for(s, tick);
          while (server.Push(s, row) == serve::AdmitStatus::kOverloaded) {
            server.Flush();
          }
        }
      }
      server.Drain();
      const double sec =
          std::chrono::duration<double>(clock::now() - t0).count();
      (void)server.TakeResults();
      const serve::ServeStats st = server.stats();
      ServingSweepRow row;
      row.streams = n;
      row.threads = t;
      row.rows_per_sec = static_cast<double>(n * kRows) / sec;
      row.windows_per_sec = static_cast<double>(st.windows_scored) / sec;
      row.p50_window_us = st.p50_window_ns * 1e-3;
      row.p95_window_us = st.p95_window_ns * 1e-3;
      row.p99_window_us = st.p99_window_ns * 1e-3;
      row.bytes_per_stream = st.bytes_per_stream;
      row.batches = st.batches;
      row.max_batch = st.max_batch;
      rows.push_back(row);
      bytes_per_stream = st.bytes_per_stream;
      if (t == 1 && n == kEffStreams) {
        serve_windows_per_sec_256_1t = row.windows_per_sec;
      }
      if (t == 1 && n == stream_counts.back()) {
        windows_per_sec_1t = row.windows_per_sec;
      }
      std::printf(
          "streams=%-5lld threads=%d  %9.0f rows/sec  %8.0f windows/sec  "
          "p50 %.0f us  p99 %.0f us  %lld bytes/stream\n",
          static_cast<long long>(n), t, row.rows_per_sec,
          row.windows_per_sec, row.p50_window_us, row.p99_window_us,
          static_cast<long long>(row.bytes_per_stream));
    }
  }
  const double batch_efficiency_x =
      sequential_windows_per_sec > 0.0
          ? serve_windows_per_sec_256_1t / sequential_windows_per_sec
          : 0.0;
  const int hw_cores =
      static_cast<int>(std::thread::hardware_concurrency());
  ThreadPool::Instance().SetNumThreads(1);

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"tfmae_fleet_serving\",\n");
  std::fprintf(f,
               "  \"shape\": \"W%lld_D%lld_L%lld_F%lld\",\n"
               "  \"rows_per_stream\": %lld,\n  \"hop\": %lld,\n"
               "  \"windows_per_stream\": %lld,\n",
               static_cast<long long>(config.window),
               static_cast<long long>(config.model_dim),
               static_cast<long long>(config.num_layers),
               static_cast<long long>(series.num_features),
               static_cast<long long>(kRows),
               static_cast<long long>(streaming.hop),
               static_cast<long long>(kWindowsPerStream));
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ServingSweepRow& r = rows[i];
    std::fprintf(f,
                 "    {\"streams\": %lld, \"threads\": %d, "
                 "\"rows_per_sec\": %.0f, \"windows_per_sec\": %.0f, "
                 "\"p50_window_us\": %.1f, \"p95_window_us\": %.1f, "
                 "\"p99_window_us\": %.1f, \"bytes_per_stream\": %lld, "
                 "\"batches\": %lld, \"max_batch\": %lld, "
                 "\"hw_cores\": %d}%s\n",
                 static_cast<long long>(r.streams), r.threads,
                 r.rows_per_sec, r.windows_per_sec, r.p50_window_us,
                 r.p95_window_us, r.p99_window_us,
                 static_cast<long long>(r.bytes_per_stream),
                 static_cast<long long>(r.batches),
                 static_cast<long long>(r.max_batch), hw_cores,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"summary\": {\n");
  std::fprintf(f, "    \"batch_efficiency_x\": %.2f,\n", batch_efficiency_x);
  std::fprintf(f, "    \"batched_bitwise_identical\": %s,\n",
               batched_bitwise_identical ? "true" : "false");
  std::fprintf(f, "    \"snapshot_restore_bitwise\": %s,\n",
               snapshot_restore_bitwise ? "true" : "false");
  std::fprintf(f, "    \"max_streams\": %lld,\n",
               static_cast<long long>(stream_counts.back()));
  std::fprintf(f, "    \"windows_per_sec_1t\": %.0f,\n", windows_per_sec_1t);
  std::fprintf(f, "    \"bytes_per_stream\": %lld,\n",
               static_cast<long long>(bytes_per_stream));
  std::fprintf(f, "    \"hw_cores\": %d\n", hw_cores);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf(
      "summary: batch_efficiency_x=%.2f batched_bitwise_identical=%s "
      "snapshot_restore_bitwise=%s max_streams=%lld bytes_per_stream=%lld "
      "hw_cores=%d\n",
      batch_efficiency_x, batched_bitwise_identical ? "true" : "false",
      snapshot_restore_bitwise ? "true" : "false",
      static_cast<long long>(stream_counts.back()),
      static_cast<long long>(bytes_per_stream), hw_cores);
  std::printf("wrote %s\n", path.c_str());
  return batched_bitwise_identical && snapshot_restore_bitwise ? 0 : 1;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  using tfmae::bench::FlagValue;
  if (const auto path = FlagValue(argc, argv, "--tensor_backend_json=")) {
    return tfmae::RunTensorBackendSweep(*path);
  }
  if (const auto path = FlagValue(argc, argv, "--obs_json=")) {
    return tfmae::RunObsProfile(*path);
  }
  if (const auto path = FlagValue(argc, argv, "--memory_plane_json=")) {
    return tfmae::RunMemoryPlaneSweep(*path);
  }
  if (const auto path = FlagValue(argc, argv, "--resilience_json=")) {
    return tfmae::RunResilienceSweep(*path);
  }
  if (const auto path = FlagValue(argc, argv, "--inference_plan_json=")) {
    return tfmae::RunInferencePlanSweep(*path);
  }
  if (const auto path = FlagValue(argc, argv, "--serving_json=")) {
    return tfmae::RunServingSweep(*path);
  }
  if (const auto path = FlagValue(argc, argv, "--quant_json=")) {
    int max_profiles = 0;  // 0 = all dataset profiles
    if (const auto limit = FlagValue(argc, argv, "--quant_profiles=")) {
      max_profiles = std::atoi(limit->c_str());
    }
    return tfmae::RunQuantSweep(*path, max_profiles);
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
