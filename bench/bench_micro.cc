// Micro-benchmarks (google-benchmark) backing the paper's complexity
// analysis (Section IV-E):
//  * FFT vs naive DFT — O(n log n) vs O(n^2).
//  * Sliding CV statistics, FFT vs two-loop — O(N·S·logS) vs O(N·S·W).
//  * Self-attention forward cost vs sequence length — the O(L·D·S^2) term.
//  * The GEMM kernel that dominates training.
#include <benchmark/benchmark.h>

#include "fft/fft.h"
#include "masking/coefficient_of_variation.h"
#include "masking/frequency_mask.h"
#include "nn/attention.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace tfmae {
namespace {

std::vector<fft::Complex> RandomComplex(std::int64_t n) {
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<fft::Complex> signal(static_cast<std::size_t>(n));
  for (auto& v : signal) v = fft::Complex(rng.Normal(), rng.Normal());
  return signal;
}

void BM_FftForward(benchmark::State& state) {
  const auto signal = RandomComplex(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::Fft(signal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftForward)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_NaiveDft(benchmark::State& state) {
  const auto signal = RandomComplex(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fft::NaiveDft(signal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_NaiveDft)->RangeMultiplier(4)->Range(64, 1024)->Complexity();

std::vector<float> RandomSeries(std::int64_t length, std::int64_t features) {
  Rng rng(static_cast<std::uint64_t>(length * 31 + features));
  std::vector<float> series(static_cast<std::size_t>(length * features));
  for (float& v : series) v = static_cast<float>(rng.Normal());
  return series;
}

// Args: {series length, CV window W}. Feature count fixed at 8.
void BM_CvStatisticFft(benchmark::State& state) {
  const std::int64_t length = state.range(0);
  const std::int64_t window = state.range(1);
  const auto series = RandomSeries(length, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(masking::CoefficientOfVariation(
        series, length, 8, window, masking::CvMethod::kFft));
  }
}
BENCHMARK(BM_CvStatisticFft)
    ->Args({512, 10})
    ->Args({2048, 10})
    ->Args({2048, 50})
    ->Args({8192, 50});

void BM_CvStatisticNaive(benchmark::State& state) {
  const std::int64_t length = state.range(0);
  const std::int64_t window = state.range(1);
  const auto series = RandomSeries(length, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(masking::CoefficientOfVariation(
        series, length, 8, window, masking::CvMethod::kNaive));
  }
}
BENCHMARK(BM_CvStatisticNaive)
    ->Args({512, 10})
    ->Args({2048, 10})
    ->Args({2048, 50})
    ->Args({8192, 50});

void BM_AttentionForward(benchmark::State& state) {
  const std::int64_t t_len = state.range(0);
  Rng rng(3);
  nn::MultiHeadSelfAttention attention(32, 4, &rng);
  Tensor x = Tensor::Randn({t_len, 32}, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attention.Forward(x));
  }
  state.SetComplexityN(t_len);
}
BENCHMARK(BM_AttentionForward)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Complexity();

void BM_MatMul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(4);
  Tensor a = Tensor::Randn({n, n}, &rng);
  Tensor b = Tensor::Randn({n, n}, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_FrequencyMasking(benchmark::State& state) {
  const std::int64_t length = state.range(0);
  Rng rng(5);
  std::vector<float> column(static_cast<std::size_t>(length));
  for (float& v : column) v = static_cast<float>(rng.Normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(masking::MaskFrequencyColumn(
        column, 0.3, masking::FrequencyMaskVariant::kAmplitude, nullptr));
  }
}
BENCHMARK(BM_FrequencyMasking)->Arg(50)->Arg(100)->Arg(512);

}  // namespace
}  // namespace tfmae

BENCHMARK_MAIN();
