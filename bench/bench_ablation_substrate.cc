// Substrate-adaptation ablations (DESIGN.md §6): each row toggles one of the
// adaptations this reproduction makes for the scaled-down training regime,
// quantifying its contribution on two representative datasets.
//  * joint alignment off (paper-faithful gradient routing)
//  * adversarial weight 1.0 (fully symmetric minimax)
//  * CV-denominator guard 'tiny' is not switchable at runtime (compile-time
//    constant), so the proxy row disables temporal masking instead
//  * per-window normalization toggled
//  * scoring stride = window (no overlap averaging)
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "core/detector.h"
#include "obs/export.h"
#include "util/table.h"

namespace tfmae {
namespace {

struct Row {
  std::string name;
  std::function<void(core::TfmaeConfig*)> apply;
};

int Main() {
  const double scale = bench::DatasetScale();
  std::printf("Substrate-adaptation ablations (scale %.2f)\n\n", scale);
  const std::vector<data::BenchmarkDataset> datasets = {
      data::BenchmarkDataset::kSmd, data::BenchmarkDataset::kSmap};

  const std::vector<Row> rows = {
      {"TFMAE (repo defaults)", [](core::TfmaeConfig*) {}},
      {"joint alignment off",
       [](core::TfmaeConfig* c) { c->joint_alignment = false; }},
      {"adversarial weight 1.0",
       [](core::TfmaeConfig* c) { c->adversarial_weight = 1.0f; }},
      {"per-window norm toggled",
       [](core::TfmaeConfig* c) {
         c->per_window_normalization = !c->per_window_normalization;
       }},
      {"no overlap scoring",
       [](core::TfmaeConfig* c) { c->score_stride = 0; }},
      {"single epoch (paper budget)",
       [](core::TfmaeConfig* c) { c->epochs = 1; }},
  };

  std::vector<std::string> headers = {"Configuration"};
  for (data::BenchmarkDataset dataset : datasets) {
    headers.push_back(data::DatasetName(dataset) + " F1");
    headers.push_back(data::DatasetName(dataset) + " AUROC");
  }
  Table table(headers);

  std::vector<data::LabeledDataset> materialized;
  for (data::BenchmarkDataset dataset : datasets) {
    materialized.push_back(data::MakeBenchmarkDataset(dataset, scale));
  }

  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.name};
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      core::TfmaeConfig config = bench::TfmaeConfigFor(datasets[i]);
      config.epochs = 30;
      row.apply(&config);
      core::TfmaeDetector detector(config, row.name);
      const eval::DetectionReport report = core::RunProtocol(
          &detector, materialized[i], bench::AnomalyFractionFor(datasets[i]));
      cells.push_back(Table::Num(report.adjusted.f1 * 100));
      cells.push_back(Table::Num(report.auroc, 3));
      std::fprintf(stderr, "  %-28s %-5s F1=%5.2f auroc=%.3f\n",
                   row.name.c_str(), materialized[i].name.c_str(),
                   report.adjusted.f1 * 100, report.auroc);
    }
    table.AddRow(std::move(cells));
  }

  std::printf("%s\n", table.ToAligned().c_str());
  table.WriteCsv(bench::ResultPath("ablation_substrate.csv"));
  std::printf("CSV written to bench_results/ablation_substrate.csv\n");
  return 0;
}

}  // namespace
}  // namespace tfmae

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  return tfmae::Main();
}
