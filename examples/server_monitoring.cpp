// Server-fleet monitoring: the SMD-style scenario from the paper's
// introduction. Trains TFMAE on a week of multichannel server telemetry,
// persists the model, then monitors new data chunk by chunk, raising alerts
// on contiguous anomalous segments.
//
//   $ ./build/examples/server_monitoring
//
// Demonstrates: multivariate data, checkpointing (SaveParameters /
// LoadParameters), chunked scoring, and segment-level alerting.
#include <algorithm>
#include <cstdio>

#include "core/attribution.h"
#include "core/detector.h"
#include "data/profiles.h"
#include "eval/detection.h"
#include "nn/serialize.h"
#include "obs/export.h"

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  using namespace tfmae;

  // Simulated 38-channel server-machine dataset (SMD profile).
  const data::LabeledDataset dataset =
      data::MakeBenchmarkDataset(data::BenchmarkDataset::kSmd, 0.6);
  std::printf("channels: %lld, train: %lld steps, monitoring: %lld steps\n",
              static_cast<long long>(dataset.train.num_features),
              static_cast<long long>(dataset.train.length),
              static_cast<long long>(dataset.test.length));

  // Train once on the historical window...
  core::TfmaeConfig config;
  config.per_window_normalization = false;
  config.epochs = 30;
  core::TfmaeDetector detector(config);
  detector.Fit(dataset.train);
  std::printf("model trained: %lld parameters, %.1fs\n",
              static_cast<long long>(detector.model()->NumParameters()),
              detector.train_stats().fit_seconds);

  // ...and checkpoint it, as a monitoring daemon would on deploy.
  const std::string checkpoint = "/tmp/tfmae_server_monitor.bin";
  if (nn::SaveParameters(*detector.model(), checkpoint)) {
    std::printf("checkpoint written to %s\n", checkpoint.c_str());
  }

  // Calibrate the alert threshold on the validation stream.
  const std::vector<float> val_scores = detector.Score(dataset.val);
  const std::vector<float> all_test_scores = detector.Score(dataset.test);
  std::vector<float> combined = val_scores;
  combined.insert(combined.end(), all_test_scores.begin(),
                  all_test_scores.end());
  const float threshold = eval::QuantileThreshold(combined, 0.05);
  std::printf("alert threshold: %.5f\n\n", threshold);

  // Monitor in chunks of 200 steps, emitting one alert per contiguous
  // anomalous segment.
  const std::int64_t chunk = 200;
  int alerts = 0;
  for (std::int64_t begin = 0; begin < dataset.test.length; begin += chunk) {
    const std::int64_t len = std::min(chunk, dataset.test.length - begin);
    if (len < config.window) break;
    const data::TimeSeries window = dataset.test.Slice(begin, len);
    const std::vector<float> scores = detector.Score(window);
    const auto flags = eval::ApplyThreshold(scores, threshold);
    std::size_t t = 0;
    while (t < flags.size()) {
      if (flags[t] == 0) {
        ++t;
        continue;
      }
      std::size_t end = t;
      float peak = 0.0f;
      while (end < flags.size() && flags[end] != 0) {
        peak = std::max(peak, scores[end]);
        ++end;
      }
      std::printf("ALERT: steps [%lld, %lld) score peak %.4f\n",
                  static_cast<long long>(begin + static_cast<std::int64_t>(t)),
                  static_cast<long long>(begin + static_cast<std::int64_t>(end)),
                  peak);
      ++alerts;
      t = end;
    }
  }

  // Root-cause hint for the strongest alert: which channels drive it?
  {
    std::size_t peak_at = 0;
    for (std::size_t t = 1; t < all_test_scores.size(); ++t) {
      if (all_test_scores[t] > all_test_scores[peak_at]) peak_at = t;
    }
    const std::vector<float> attribution = core::OcclusionAttribution(
        &detector, dataset.test, static_cast<std::int64_t>(peak_at));
    std::vector<std::size_t> order(attribution.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return attribution[a] > attribution[b];
    });
    std::printf("\nstrongest alert at t=%zu; top contributing channels:", peak_at);
    for (int i = 0; i < 3; ++i) {
      std::printf(" f%zu(%.4f)", order[static_cast<std::size_t>(i)],
                  attribution[order[static_cast<std::size_t>(i)]]);
    }
    std::printf("\n");
  }

  // How did the alerting do against ground truth?
  const auto predictions = eval::ApplyThreshold(all_test_scores, threshold);
  const auto adjusted = eval::PointAdjust(predictions, dataset.test.labels);
  const auto metrics = eval::ComputePrf(adjusted, dataset.test.labels);
  std::printf("\n%d alerts; precision %.1f%%, recall %.1f%%, F1 %.1f%%\n",
              alerts, metrics.precision * 100, metrics.recall * 100,
              metrics.f1 * 100);
  std::remove(checkpoint.c_str());
  return 0;
}
