// Industrial-control security: the SWaT-style scenario — detecting attacks
// on a water-treatment testbed whose actuator cycles are strongly periodic
// and whose attacks appear as sustained pattern deviations.
//
//   $ ./build/examples/water_treatment
//
// Demonstrates: comparing TFMAE against two baselines (USAD, IForest)
// through the shared AnomalyDetector interface, and reporting with and
// without point adjustment.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/iforest.h"
#include "baselines/usad.h"
#include "core/anomaly_detector.h"
#include "core/detector.h"
#include "data/profiles.h"
#include "obs/export.h"

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  using namespace tfmae;

  const data::LabeledDataset dataset =
      data::MakeBenchmarkDataset(data::BenchmarkDataset::kSwat);
  std::printf(
      "SWaT-style testbed: %lld sensor/actuator channels, attack ratio "
      "%.1f%%\n\n",
      static_cast<long long>(dataset.test.num_features),
      dataset.test.AnomalyRatio() * 100);

  // Build the contenders behind the common interface.
  std::vector<std::unique_ptr<core::AnomalyDetector>> detectors;
  {
    core::TfmaeConfig config;
    config.per_window_normalization = false;
    config.temporal_mask_ratio = 0.25;
    config.frequency_mask_ratio = 0.4;
    config.epochs = 60;
    detectors.push_back(std::make_unique<core::TfmaeDetector>(config));
  }
  detectors.push_back(std::make_unique<baselines::UsadDetector>());
  detectors.push_back(std::make_unique<baselines::IsolationForestDetector>());

  std::printf("%-10s %10s %10s %10s %10s\n", "method", "raw F1", "adj P",
              "adj R", "adj F1");
  for (auto& detector : detectors) {
    const eval::DetectionReport report =
        core::RunProtocol(detector.get(), dataset, /*anomaly_fraction=*/0.05);
    std::printf("%-10s %9.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
                detector->Name().c_str(), report.raw.f1 * 100,
                report.adjusted.precision * 100, report.adjusted.recall * 100,
                report.adjusted.f1 * 100);
  }

  std::printf(
      "\nNote how point adjustment (the literature's segment-level protocol)"
      "\nlifts every method: one hit inside a sustained attack credits the "
      "whole segment.\n");
  return 0;
}
