// Bring-your-own-data: load a CSV time series, train TFMAE on its head,
// score its tail, and write the scores back out as CSV.
//
//   $ ./build/examples/custom_csv [input.csv]
//
// Without an argument, a demo CSV is generated first so the example is
// self-contained. The CSV format is a header "f0,f1,...[,label]" followed
// by one row per time step (see src/data/io.h). Malformed files fail with
// a line-numbered diagnostic; missing cells (empty / "nan") load as NaN and
// are repaired by last-observation-carried-forward imputation before
// training (docs/RESILIENCE.md).
#include <cmath>
#include <cstdio>
#include <string>

#include "core/detector.h"
#include "data/anomaly.h"
#include "data/generator.h"
#include "data/io.h"
#include "eval/detection.h"
#include "util/rng.h"
#include "obs/export.h"

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  using namespace tfmae;

  std::string input_path;
  if (argc > 1) {
    input_path = argv[1];
  } else {
    // Self-contained demo: synthesize a CSV first.
    input_path = "/tmp/tfmae_demo_input.csv";
    data::BaseSignalConfig signal;
    signal.length = 2000;
    signal.num_features = 3;
    signal.seed = 29;
    data::TimeSeries demo = data::GenerateBaseSignal(signal);
    // Contaminate the scored tail (the last 25%) so the demo has something
    // to find; the training head stays clean.
    Rng rng(31);
    const std::int64_t tail_start = demo.length * 75 / 100;
    data::TimeSeries tail = demo.Slice(tail_start, demo.length - tail_start);
    data::InjectAnomalies(&tail,
                          {.global_point = 1, .contextual = 1, .shapelet = 1},
                          0.06, data::AnomalyOptions{}, &rng);
    demo.labels.assign(static_cast<std::size_t>(demo.length), 0);
    for (std::int64_t t = 0; t < tail.length; ++t) {
      for (std::int64_t n = 0; n < demo.num_features; ++n) {
        demo.at(tail_start + t, n) = tail.at(t, n);
      }
      demo.labels[static_cast<std::size_t>(tail_start + t)] =
          tail.labels[static_cast<std::size_t>(t)];
    }
    // Real exports have holes: drop a few scattered cells plus a short
    // gap, to exercise the missing-data path below.
    for (std::int64_t t = 100; t < demo.length; t += 331) demo.at(t, 1) = std::nanf("");
    for (std::int64_t t = 700; t < 706; ++t) demo.at(t, 0) = std::nanf("");
    data::SaveCsv(demo, input_path);
    std::printf("demo CSV generated at %s\n", input_path.c_str());
  }

  data::CsvDiagnostic diagnostic;
  auto loaded = data::LoadCsv(input_path, &diagnostic);
  if (!loaded.has_value()) {
    // The diagnostic pinpoints the offending line (1-based, header = 1).
    std::fprintf(stderr, "failed to load %s, line %lld: %s\n",
                 input_path.c_str(), static_cast<long long>(diagnostic.line),
                 diagnostic.message.c_str());
    return 1;
  }
  std::printf("loaded %lld steps x %lld features (labels: %s)\n",
              static_cast<long long>(loaded->length),
              static_cast<long long>(loaded->num_features),
              loaded->labels.empty() ? "no" : "yes");
  if (diagnostic.missing_values > 0) {
    const std::int64_t repaired = data::ImputeMissingLocf(&*loaded);
    std::printf("%lld missing cells repaired by LOCF imputation\n",
                static_cast<long long>(repaired));
  }

  // Train on the first 60%, calibrate on the next 15%, score the rest.
  const std::int64_t train_len = loaded->length * 60 / 100;
  const std::int64_t val_len = loaded->length * 15 / 100;
  data::TimeSeries train = loaded->Slice(0, train_len);
  data::TimeSeries val = loaded->Slice(train_len, val_len);
  data::TimeSeries test =
      loaded->Slice(train_len + val_len, loaded->length - train_len - val_len);

  core::TfmaeConfig config;
  config.per_window_normalization = false;
  core::TfmaeDetector detector(config);
  detector.Fit(train);
  const std::vector<float> val_scores = detector.Score(val);
  const std::vector<float> test_scores = detector.Score(test);
  const float threshold = eval::QuantileThreshold(val_scores, 0.02);

  // Write scores (and flags) next to the input.
  const std::string output_path = input_path + ".scores.csv";
  FILE* out = std::fopen(output_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
    return 1;
  }
  std::fprintf(out, "t,score,flag\n");
  for (std::size_t t = 0; t < test_scores.size(); ++t) {
    std::fprintf(out, "%zu,%.6f,%d\n", t + static_cast<std::size_t>(train_len + val_len),
                 test_scores[t], test_scores[t] >= threshold ? 1 : 0);
  }
  std::fclose(out);
  std::printf("scores written to %s (threshold %.5f)\n", output_path.c_str(),
              threshold);

  // If the CSV carried labels, also report quality.
  if (!test.labels.empty()) {
    const auto report =
        eval::EvaluateDetection(val_scores, test_scores, test.labels, 0.02);
    std::printf("P=%.2f%% R=%.2f%% F1=%.2f%% AUROC=%.3f\n",
                report.adjusted.precision * 100, report.adjusted.recall * 100,
                report.adjusted.f1 * 100, report.auroc);
  }
  return 0;
}
