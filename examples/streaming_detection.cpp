// Streaming detection: feed observations one at a time through a trained
// TFMAE using the StreamingDetector wrapper — the shape of a real
// observability integration (metric stream in, alerts out). The live feed
// is deliberately degraded (dropped sensor values, a malformed row) to show
// the resilience contract: bad input is imputed, quarantined, or rejected
// with per-stream health accounting, never UB (docs/RESILIENCE.md).
//
//   $ ./build/examples/streaming_detection
#include <cmath>
#include <cstdio>

#include "core/detector.h"
#include "core/streaming.h"
#include "data/anomaly.h"
#include "data/generator.h"
#include "obs/export.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  using namespace tfmae;

  // Historical data to train on, live stream with planted incidents.
  data::BaseSignalConfig signal;
  signal.length = 2200;
  signal.num_features = 4;
  signal.noise_std = 0.05;
  signal.seed = 17;
  data::TimeSeries full = data::GenerateBaseSignal(signal);
  data::TimeSeries history = full.Slice(0, 1500);
  data::TimeSeries live = full.Slice(1500, 700);
  Rng rng(23);
  data::AnomalyOptions options;
  options.feature_fraction = 0.5;
  for (int i = 0; i < 4; ++i) {
    data::InjectOne(&live, data::AnomalyType::kContextual, options, &rng);
  }
  data::InjectOne(&live, data::AnomalyType::kShapelet, options, &rng);

  core::TfmaeConfig config;
  config.per_window_normalization = false;
  config.temporal_mask_ratio = 0.25;
  core::TfmaeDetector detector(config);
  detector.Fit(history);
  std::printf("detector trained on %lld historical steps\n",
              static_cast<long long>(history.length));

  core::StreamingOptions stream_options;
  stream_options.window = config.window;
  stream_options.hop = 5;  // re-score every 5 observations
  stream_options.impute_staleness_cap = 3;  // LOCF at most 3 rows per feature
  core::StreamingDetector stream(&detector, stream_options);
  stream.CalibrateThreshold(detector.Score(history), 0.005);
  std::printf("alert threshold: %.5f\n\n", stream.threshold());

  // Degrade the live feed the way real collectors do: a flaky sensor drops
  // feature 2 for a few scattered rows, and one longer outage exceeds the
  // staleness cap (those rows are quarantined, not scored).
  Rng degrade_rng(41);
  int dropped_values = 0;
  for (std::int64_t t = 0; t < live.length; ++t) {
    const bool flaky = degrade_rng.Uniform() < 0.02;
    const bool outage = t >= 400 && t < 406;
    if (flaky || outage) {
      live.at(t, 2) = std::nanf("");
      ++dropped_values;
    }
  }
  std::printf("degraded feed: %d values dropped from feature f2\n\n",
              dropped_values);

  // Consume the live stream observation by observation.
  int alerts = 0;
  bool in_alert = false;
  for (std::int64_t t = 0; t < live.length; ++t) {
    std::vector<float> observation(static_cast<std::size_t>(live.num_features));
    for (std::int64_t n = 0; n < live.num_features; ++n) {
      observation[static_cast<std::size_t>(n)] = live.at(t, n);
    }
    const auto result = stream.Push(observation);
    if (!result.has_value()) continue;  // window fill / quarantined row
    if (result->is_anomaly && !in_alert) {
      std::printf("t=%4lld  ALERT raised  (score %.5f, truth=%s)\n",
                  static_cast<long long>(t), result->score,
                  live.labels.empty() || live.labels[static_cast<std::size_t>(
                                             t)] == 0
                      ? "normal"
                      : "anomaly");
      ++alerts;
      in_alert = true;
    } else if (!result->is_anomaly && in_alert) {
      std::printf("t=%4lld  alert cleared\n", static_cast<long long>(t));
      in_alert = false;
    }
  }
  std::printf("\nstream finished: %lld observations, %d alerts, %.1f%% true "
              "anomaly ratio\n",
              static_cast<long long>(stream.total_pushed()), alerts,
              live.AnomalyRatio() * 100);

  // A malformed row (wrong arity) is rejected with a typed status — it
  // never reaches the model and never crashes the stream.
  stream.Push({1.0f, 2.0f});
  std::printf("wrong-arity push -> %s\n",
              stream.last_push_status() == core::PushStatus::kRejected
                  ? "rejected (typed error, stream unharmed)"
                  : "unexpected status");

  const core::StreamHealth& health = stream.health();
  std::printf("\nstream health report:\n");
  std::printf("  rows scored       %lld\n",
              static_cast<long long>(health.rows_scored));
  std::printf("  rows in warm-up   %lld\n",
              static_cast<long long>(health.rows_warmup));
  std::printf("  rows imputed      %lld  (%lld values filled by LOCF)\n",
              static_cast<long long>(health.rows_imputed),
              static_cast<long long>(health.values_imputed));
  std::printf("  rows quarantined  %lld  (staleness cap %lld exceeded)\n",
              static_cast<long long>(health.rows_quarantined),
              static_cast<long long>(stream_options.impute_staleness_cap));
  std::printf("  rows rejected     %lld\n",
              static_cast<long long>(health.rows_rejected));
  return 0;
}
