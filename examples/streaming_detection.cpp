// Streaming detection: feed observations one at a time through a trained
// TFMAE using the StreamingDetector wrapper — the shape of a real
// observability integration (metric stream in, alerts out).
//
//   $ ./build/examples/streaming_detection
#include <cstdio>

#include "core/detector.h"
#include "core/streaming.h"
#include "data/anomaly.h"
#include "data/generator.h"
#include "obs/export.h"

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  using namespace tfmae;

  // Historical data to train on, live stream with planted incidents.
  data::BaseSignalConfig signal;
  signal.length = 2200;
  signal.num_features = 4;
  signal.noise_std = 0.05;
  signal.seed = 17;
  data::TimeSeries full = data::GenerateBaseSignal(signal);
  data::TimeSeries history = full.Slice(0, 1500);
  data::TimeSeries live = full.Slice(1500, 700);
  Rng rng(23);
  data::AnomalyOptions options;
  options.feature_fraction = 0.5;
  for (int i = 0; i < 4; ++i) {
    data::InjectOne(&live, data::AnomalyType::kContextual, options, &rng);
  }
  data::InjectOne(&live, data::AnomalyType::kShapelet, options, &rng);

  core::TfmaeConfig config;
  config.per_window_normalization = false;
  config.temporal_mask_ratio = 0.25;
  core::TfmaeDetector detector(config);
  detector.Fit(history);
  std::printf("detector trained on %lld historical steps\n",
              static_cast<long long>(history.length));

  core::StreamingOptions stream_options;
  stream_options.window = config.window;
  stream_options.hop = 5;  // re-score every 5 observations
  core::StreamingDetector stream(&detector, stream_options);
  stream.CalibrateThreshold(detector.Score(history), 0.005);
  std::printf("alert threshold: %.5f\n\n", stream.threshold());

  // Consume the live stream observation by observation.
  int alerts = 0;
  bool in_alert = false;
  for (std::int64_t t = 0; t < live.length; ++t) {
    std::vector<float> observation(static_cast<std::size_t>(live.num_features));
    for (std::int64_t n = 0; n < live.num_features; ++n) {
      observation[static_cast<std::size_t>(n)] = live.at(t, n);
    }
    const auto result = stream.Push(observation);
    if (!result.has_value()) continue;  // initial window fill
    if (result->is_anomaly && !in_alert) {
      std::printf("t=%4lld  ALERT raised  (score %.5f, truth=%s)\n",
                  static_cast<long long>(t), result->score,
                  live.labels.empty() || live.labels[static_cast<std::size_t>(
                                             t)] == 0
                      ? "normal"
                      : "anomaly");
      ++alerts;
      in_alert = true;
    } else if (!result->is_anomaly && in_alert) {
      std::printf("t=%4lld  alert cleared\n", static_cast<long long>(t));
      in_alert = false;
    }
  }
  std::printf("\nstream finished: %lld observations, %d alerts, %.1f%% true "
              "anomaly ratio\n",
              static_cast<long long>(stream.total_pushed()), alerts,
              live.AnomalyRatio() * 100);
  return 0;
}
