// Spacecraft telemetry under distribution shift: the SMAP-style scenario of
// the paper's Figs. 1 and 9. Test-time telemetry drifts away from the
// training distribution; reconstruction-style scores inflate along the
// drift, while TFMAE's contrastive scores stay calibrated.
//
//   $ ./build/examples/spacecraft_telemetry
//
// Demonstrates: distribution-shift robustness, CSV export of scored data
// for external plotting, and the data::io round-trip.
#include <cstdio>

#include "baselines/dense_ae.h"
#include "core/detector.h"
#include "data/io.h"
#include "data/profiles.h"
#include "eval/detection.h"
#include "eval/metrics.h"
#include "obs/export.h"

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  using namespace tfmae;

  const data::LabeledDataset dataset =
      data::MakeBenchmarkDataset(data::BenchmarkDataset::kSmap);
  std::printf("SMAP-style telemetry: %lld channels, drifting test split\n\n",
              static_cast<long long>(dataset.test.num_features));

  // TFMAE with per-window normalization (shift-robust configuration).
  core::TfmaeConfig config;
  config.per_window_normalization = true;
  config.temporal_mask_ratio = 0.65;
  config.frequency_mask_ratio = 0.3;
  config.epochs = 60;
  core::TfmaeDetector tfmae(config);
  tfmae.Fit(dataset.train);

  // A plain reconstruction autoencoder for contrast.
  baselines::DenseAeDetector reconstruction;
  reconstruction.Fit(dataset.train);

  auto report_for = [&](core::AnomalyDetector& detector) {
    const auto val_scores = detector.Score(dataset.val);
    const auto test_scores = detector.Score(dataset.test);
    return eval::EvaluateDetection(val_scores, test_scores,
                                   dataset.test.labels, 0.05);
  };
  const eval::DetectionReport tfmae_report = report_for(tfmae);
  const eval::DetectionReport recon_report = report_for(reconstruction);

  std::printf("%-10s F1=%6.2f%%  AUROC=%.3f\n", "TFMAE",
              tfmae_report.adjusted.f1 * 100, tfmae_report.auroc);
  std::printf("%-10s F1=%6.2f%%  AUROC=%.3f\n", "DenseAE",
              recon_report.adjusted.f1 * 100, recon_report.auroc);

  // Export the scored telemetry for external plotting, and verify the CSV
  // round-trip (the same loader ingests user-provided CSVs).
  data::TimeSeries scored = dataset.test;
  const std::string path = "/tmp/tfmae_spacecraft_scores.csv";
  if (data::SaveCsv(scored, path)) {
    std::printf("\nscored telemetry written to %s\n", path.c_str());
    if (auto loaded = data::LoadCsv(path)) {
      std::printf("round-trip check: %lld rows, %lld features, AR %.1f%%\n",
                  static_cast<long long>(loaded->length),
                  static_cast<long long>(loaded->num_features),
                  loaded->AnomalyRatio() * 100);
    }
  }
  std::remove(path.c_str());

  std::printf(
      "\nExpected: TFMAE keeps its advantage under drift, because the "
      "contrastive\ndiscrepancy compares two views of the same (shifted) "
      "input instead of\ncomparing the shifted input to an unshifted "
      "reconstruction.\n");
  return 0;
}
