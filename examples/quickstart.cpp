// Quickstart: train TFMAE on a synthetic univariate series and detect
// planted anomalies.
//
//   $ ./build/examples/quickstart
//
// Walks the minimal API path: generate data -> configure -> Fit -> Score ->
// threshold -> report.
#include <cstdio>

#include "core/detector.h"
#include "data/anomaly.h"
#include "data/generator.h"
#include "eval/detection.h"
#include "obs/export.h"

int main(int argc, char** argv) {
  tfmae::obs::MaybeProfileFromArgs(&argc, argv);
  using namespace tfmae;

  // 1. Make a smooth periodic signal and carve train/val/test splits.
  data::BaseSignalConfig signal;
  signal.length = 2400;
  signal.num_features = 1;
  signal.noise_std = 0.05;
  signal.seed = 7;
  data::TimeSeries full = data::GenerateBaseSignal(signal);
  data::TimeSeries train = full.Slice(0, 1400);
  data::TimeSeries val = full.Slice(1400, 400);
  data::TimeSeries test = full.Slice(1800, 600);

  // 2. Plant anomalies in the test split (point spikes + one fast-seasonal
  //    segment), keeping ground-truth labels for the report.
  Rng rng(11);
  data::AnomalyOptions options;
  for (int i = 0; i < 6; ++i) {
    data::InjectOne(&test, data::AnomalyType::kGlobalPoint, options, &rng);
  }
  data::InjectOne(&test, data::AnomalyType::kSeasonal, options, &rng);
  std::printf("test anomaly ratio: %.1f%%\n", test.AnomalyRatio() * 100);

  // 3. Configure and train TFMAE. The defaults are sized for this scale;
  //    see core/config.h for every knob (masking ratios, ablations, ...).
  core::TfmaeConfig config;
  config.temporal_mask_ratio = 0.25;   // r^(T): share of observations masked
  config.frequency_mask_ratio = 0.3;   // r^(F): share of frequency bins masked
  config.per_window_normalization = false;
  core::TfmaeDetector detector(config);
  detector.Fit(train);
  std::printf("trained on %lld windows in %.1fs\n",
              static_cast<long long>(detector.train_stats().num_windows),
              detector.train_stats().fit_seconds);

  // 4. Score and evaluate with the paper's protocol (threshold at the
  //    r%-quantile, point adjustment over anomaly segments).
  const std::vector<float> val_scores = detector.Score(val);
  const std::vector<float> test_scores = detector.Score(test);
  const eval::DetectionReport report =
      eval::EvaluateDetection(val_scores, test_scores, test.labels,
                              /*anomaly_fraction=*/0.02);

  std::printf("threshold delta = %.5f\n", report.threshold);
  std::printf("precision = %.2f%%  recall = %.2f%%  F1 = %.2f%%  AUROC = %.3f\n",
              report.adjusted.precision * 100, report.adjusted.recall * 100,
              report.adjusted.f1 * 100, report.auroc);

  // 5. Show where the detections landed.
  const auto predictions = eval::ApplyThreshold(test_scores, report.threshold);
  std::printf("detected anomalous time steps:");
  int shown = 0;
  for (std::size_t t = 0; t < predictions.size() && shown < 20; ++t) {
    if (predictions[t] != 0) {
      std::printf(" %zu", t);
      ++shown;
    }
  }
  std::printf("%s\n", shown == 20 ? " ..." : "");
  return 0;
}
